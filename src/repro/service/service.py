"""The serving facade: cache → coalesce → execute, with metrics throughout.

:class:`QueryService` is the one object a frontend (HTTP handler, CLI,
benchmark driver) talks to.  Per request it:

1. normalizes the request into a query signature
   (:func:`repro.core.engine.query_signature`);
2. consults the LRU :class:`~repro.service.cache.ResultCache`;
3. on a miss, coalesces with any identical in-flight request
   (:class:`~repro.service.batching.Batcher`);
4. as the flight leader, runs the query through the
   :class:`~repro.service.executor.Executor` (thread-pool shard fan-out,
   deadline, admission control) and caches the answer;
5. records the outcome in :class:`~repro.service.metrics.Metrics`.

Every layer is exact: a cached or coalesced answer is element-for-element
the answer the engine would compute.  Online updates keep it that way —
:meth:`QueryService.add_trajectory` clears the cache after mutating the
engine, so no stale answer survives an insert (the invalidation hook
deletes will reuse).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.engine import QueryResult, query_signature, topk_signature
from repro.core.temporal import TemporalMode, TimeInterval
from repro.exceptions import AdmissionError, DeadlineExceededError, QueryError
from repro.service.batching import Batcher
from repro.service.cache import ResultCache
from repro.service.executor import Executor
from repro.service.metrics import Metrics
from repro.service.observability import ServiceObservability

__all__ = ["QueryService", "ServiceResponse"]


def _deadline_is_retryable(exc: BaseException) -> bool:
    """Coalescing fairness predicate: a leader's deadline miss (or the
    cancellation it decays to) is the leader's budget running out, not the
    follower's — the follower retries while its own budget holds."""
    return isinstance(exc, DeadlineExceededError)


@dataclass(frozen=True, slots=True)
class ServiceResponse:
    """One answered request: the engine result plus serving provenance.

    ``result`` is a :class:`~repro.core.engine.QueryResult` for range
    requests and a :class:`~repro.core.topk.TopKResult` for top-k
    requests (:meth:`QueryService.topk`)."""

    result: QueryResult
    signature: tuple
    cached: bool
    coalesced: bool
    seconds: float


class QueryService:
    """Multi-client query serving over one search engine.

    Parameters
    ----------
    engine:
        :class:`~repro.core.engine.SubtrajectorySearch` or
        :class:`~repro.core.partitioned.PartitionedSubtrajectorySearch`
        (the latter gets parallel per-shard fan-out).
    max_workers / max_pending / default_deadline:
        Forwarded to the :class:`Executor`.
    cache_size:
        LRU capacity; ``0`` disables result caching.
    batching:
        Coalesce concurrent duplicate requests (single-flight).
    observability:
        A prebuilt :class:`~repro.service.observability.ServiceObservability`
        to bind, or ``None`` to construct one from ``trace_sample_rate`` /
        ``slow_query_seconds`` (which are ignored when a prebuilt one is
        given — its own knobs win).
    trace_sample_rate:
        Fraction of requests to trace end-to-end (0 = tracing off, the
        near-zero-overhead default; slow queries are recorded regardless).
    slow_query_seconds:
        Latency threshold over which a query logs a one-line JSON record
        on the ``repro.slowlog`` logger and is force-kept in the flight
        recorder (``None`` disables).
    """

    def __init__(
        self,
        engine,
        *,
        max_workers: int = 4,
        max_pending: int = 64,
        default_deadline: Optional[float] = None,
        cache_size: int = 1024,
        batching: bool = True,
        metrics_window: int = 4096,
        observability: Optional[ServiceObservability] = None,
        trace_sample_rate: float = 0.0,
        slow_query_seconds: Optional[float] = None,
    ) -> None:
        self._engine = engine
        self._costs = engine.costs
        self.executor = Executor(
            engine,
            max_workers=max_workers,
            max_pending=max_pending,
            default_deadline=default_deadline,
        )
        self.cache = ResultCache(cache_size)
        self.batcher = Batcher() if batching else None
        self.metrics = Metrics(window=metrics_window)
        if observability is None:
            observability = ServiceObservability(
                trace_sample_rate=trace_sample_rate,
                slow_query_seconds=slow_query_seconds,
            )
        self.observability = observability
        observability.bind(self)

    @property
    def engine(self):
        """The wrapped search engine."""
        return self._engine

    def close(self, *, close_engine: bool = False) -> None:
        """Drain the executor pool and stop admitting queries (idempotent).

        ``close_engine=True`` also closes the engine itself — required to
        terminate shard worker processes when serving a
        ``backend="processes"`` engine this service owns."""
        self.executor.close(close_engine=close_engine)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request path -------------------------------------------------------

    def signature(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_mode: TemporalMode = "overlap",
    ) -> tuple:
        """The cache/coalescing key this service uses for a request."""
        return query_signature(
            query,
            self._costs,
            tau=tau,
            tau_ratio=tau_ratio,
            time_interval=time_interval,
            temporal_mode=temporal_mode,
        )

    def query(
        self,
        query: Sequence[int],
        *,
        tau: Optional[float] = None,
        tau_ratio: Optional[float] = None,
        time_interval: Optional[TimeInterval] = None,
        temporal_mode: TemporalMode = "overlap",
        deadline: Optional[float] = None,
        allow_partial: bool = False,
    ) -> ServiceResponse:
        """Answer one request through cache, coalescing, and executor.

        Semantics match the engine exactly; raises
        :class:`~repro.exceptions.AdmissionError` /
        :class:`~repro.exceptions.DeadlineExceededError` under overload.

        ``allow_partial`` opts this request into graceful degradation
        (processes-backend engines only — see
        :meth:`~repro.core.partitioned.PartitionedSubtrajectorySearch.query`):
        with shards down, the response carries ``result.complete=False``
        and ``result.degraded_shards`` instead of an error.  Partial
        answers are never cached (the shard could come back) and never
        shared with a coalesced follower that did not opt in — the flight
        key includes the flag.
        """
        sig = self.signature(
            query,
            tau=tau,
            tau_ratio=tau_ratio,
            time_interval=time_interval,
            temporal_mode=temporal_mode,
        )
        obs = self.observability
        trace = obs.start_trace(query_length=len(query))
        root = None if trace is None else trace.root
        if root is not None:
            if tau is not None:
                root.set("tau", float(tau))
            if tau_ratio is not None:
                root.set("tau_ratio", float(tau_ratio))
            if deadline is not None:
                root.set("deadline_seconds", float(deadline))
        t0 = time.perf_counter()
        # Captured before the cache lookup: this generation also keys the
        # coalescing flight, so a request arriving after an invalidation
        # never joins a pre-invalidation flight (read-your-writes for the
        # inserter) and a computed result is never re-cached across one.
        generation = self.cache.generation
        lookup_span = None if root is None else root.child("cache_lookup")
        hit = self.cache.get(sig)
        if lookup_span is not None:
            lookup_span.set("hit", hit is not None)
            lookup_span.finish()
        if hit is not None:
            seconds = time.perf_counter() - t0
            self.metrics.observe(seconds, cached=True, result=hit)
            obs.observe_response(seconds, cached=True, result=hit)
            obs.finish_trace(trace, seconds=seconds, result=hit, cached=True)
            return ServiceResponse(hit, sig, True, False, seconds)

        def compute() -> QueryResult:
            result = self.executor.query(
                query,
                tau=tau,
                tau_ratio=tau_ratio,
                time_interval=time_interval,
                temporal_mode=temporal_mode,
                deadline=deadline,
                trace=root,
                allow_partial=allow_partial,
            )
            # generation guard: if an online update invalidated the cache
            # while this was computing, the result is stale — don't re-cache.
            # Partial answers are never cached at all: a later request must
            # not be served yesterday's degradation as if it were complete.
            if result.complete:
                self.cache.put(sig, result, generation=generation)
            return result

        budget = (
            deadline if deadline is not None else self.executor.default_deadline
        )
        result, coalesced = None, False
        try:
            if self.batcher is not None:
                # The flight key includes the deadline (a tightly-budgeted
                # leader's DeadlineExceededError must not propagate to a
                # follower that asked for more time) and the cache
                # generation (a post-insert request must not share a
                # pre-insert computation).  wait_timeout enforces the
                # budget for followers that joined a leader's flight late;
                # follower_retry is the fairness half of the same rule — a
                # follower that joined late has budget left when the
                # leader's deadline fires, so it goes around as a new
                # leader instead of inheriting a miss it did not earn.
                flight_span = None if root is None else root.child("coalesce")
                try:
                    result, coalesced = self.batcher.run(
                        (sig, deadline, generation, allow_partial),
                        compute,
                        wait_timeout=budget,
                        follower_retry=_deadline_is_retryable,
                    )
                finally:
                    if flight_span is not None:
                        flight_span.set("coalesced", coalesced)
                        flight_span.finish()
            else:
                result, coalesced = compute(), False
        except AdmissionError as exc:
            self.metrics.observe_error("rejected", exc=exc)
            self._trace_error(trace, t0, exc)
            raise
        except DeadlineExceededError as exc:
            self.metrics.observe_error("deadline", exc=exc)
            self._trace_error(trace, t0, exc)
            raise
        except TimeoutError as exc:
            converted = DeadlineExceededError(str(exc))
            self.metrics.observe_error("deadline", exc=converted)
            self._trace_error(trace, t0, converted)
            raise converted from None
        except Exception as exc:
            self.metrics.observe_error(exc=exc)
            self._trace_error(trace, t0, exc)
            raise
        seconds = time.perf_counter() - t0
        self.metrics.observe(seconds, coalesced=coalesced, result=result)
        obs.observe_response(seconds, coalesced=coalesced, result=result)
        obs.finish_trace(
            trace, seconds=seconds, result=result, coalesced=coalesced
        )
        return ServiceResponse(result, sig, False, coalesced, seconds)

    def topk_signature(self, query: Sequence[int]) -> tuple:
        """The cache/coalescing key this service uses for a top-k
        request.  Deliberately k-independent (see
        :func:`repro.core.engine.topk_signature`): the cached answer's
        own ``k`` decides coverage."""
        return topk_signature(query, self._costs)

    def topk(
        self,
        query: Sequence[int],
        k: int,
        *,
        initial_tau_ratio: float = 0.05,
        growth: float = 2.0,
        deadline: Optional[float] = None,
        allow_partial: bool = False,
    ) -> ServiceResponse:
        """Answer one top-k request through cache, coalescing, executor.

        The cache applies the truncation reuse rule: an earlier answer
        computed at ``k' >= k`` (same query, same cost model — the
        k-independent :meth:`topk_signature`) serves this request without
        touching the engine, re-cut to ``k`` with its tie count
        recomputed.  Generation guards match range queries, so an online
        insert invalidates top-k answers identically.  Partial answers
        (``allow_partial`` with shards down) are never cached and never
        shared with followers that did not opt in — the flight key
        includes the flag.  Raises the same admission/deadline errors as
        :meth:`query`.
        """
        if k <= 0:
            raise QueryError("k must be positive")
        sig = self.topk_signature(query)
        obs = self.observability
        trace = obs.start_trace(query_length=len(query), mode="topk", k=int(k))
        root = None if trace is None else trace.root
        if root is not None and deadline is not None:
            root.set("deadline_seconds", float(deadline))
        t0 = time.perf_counter()
        # Same capture-before-lookup discipline as query(): the generation
        # keys the flight too, so post-insert requests never share a
        # pre-insert computation.
        generation = self.cache.generation
        lookup_span = None if root is None else root.child("cache_lookup")
        hit = self.cache.get_topk(sig, k)
        if lookup_span is not None:
            lookup_span.set("hit", hit is not None)
            lookup_span.finish()
        if hit is not None:
            seconds = time.perf_counter() - t0
            self.metrics.observe(seconds, cached=True, result=hit)
            obs.observe_topk(seconds, k=k, cached=True, result=hit)
            if root is not None:
                root.set("tau_rounds", hit.tau_rounds)
                root.set("ties_at_k", hit.ties_at_k)
            obs.finish_topk_trace(trace, seconds=seconds, result=hit, cached=True)
            return ServiceResponse(hit, sig, True, False, seconds)

        def compute():
            result = self.executor.topk(
                query,
                k,
                initial_tau_ratio=initial_tau_ratio,
                growth=growth,
                deadline=deadline,
                trace=root,
                allow_partial=allow_partial,
            )
            # Cache only complete answers (a degraded ranking could be
            # missing a shard's better match); put_topk additionally
            # refuses to replace a deeper cached answer with this one.
            if result.complete:
                self.cache.put_topk(sig, result, generation=generation)
            return result

        budget = (
            deadline if deadline is not None else self.executor.default_deadline
        )
        result, coalesced = None, False
        try:
            if self.batcher is not None:
                # Same flight-key discipline as query(), plus k: two
                # concurrent requests coalesce only when the leader's
                # answer is exactly the follower's (depth included —
                # truncation reuse happens in the cache, not mid-flight).
                flight_span = None if root is None else root.child("coalesce")
                try:
                    result, coalesced = self.batcher.run(
                        (sig, k, deadline, generation, allow_partial),
                        compute,
                        wait_timeout=budget,
                        follower_retry=_deadline_is_retryable,
                    )
                finally:
                    if flight_span is not None:
                        flight_span.set("coalesced", coalesced)
                        flight_span.finish()
            else:
                result, coalesced = compute(), False
        except AdmissionError as exc:
            self.metrics.observe_error("rejected", exc=exc)
            self._trace_topk_error(trace, t0, exc)
            raise
        except DeadlineExceededError as exc:
            self.metrics.observe_error("deadline", exc=exc)
            self._trace_topk_error(trace, t0, exc)
            raise
        except TimeoutError as exc:
            converted = DeadlineExceededError(str(exc))
            self.metrics.observe_error("deadline", exc=converted)
            self._trace_topk_error(trace, t0, converted)
            raise converted from None
        except Exception as exc:
            self.metrics.observe_error(exc=exc)
            self._trace_topk_error(trace, t0, exc)
            raise
        seconds = time.perf_counter() - t0
        self.metrics.observe(seconds, coalesced=coalesced, result=result)
        obs.observe_topk(seconds, k=k, coalesced=coalesced, result=result)
        if root is not None:
            root.set("tau_rounds", result.tau_rounds)
            root.set("ties_at_k", result.ties_at_k)
        obs.finish_topk_trace(
            trace, seconds=seconds, result=result, coalesced=coalesced
        )
        return ServiceResponse(result, sig, False, coalesced, seconds)

    def _trace_error(self, trace, t0: float, exc: BaseException) -> None:
        """Close out a failed request's trace and error instruments."""
        obs = self.observability
        obs.observe_error(exc)
        obs.finish_trace(trace, seconds=time.perf_counter() - t0, error=exc)

    def _trace_topk_error(self, trace, t0: float, exc: BaseException) -> None:
        """Close out a failed top-k request's trace and error
        instruments."""
        obs = self.observability
        obs.observe_error(exc)
        obs.finish_topk_trace(
            trace, seconds=time.perf_counter() - t0, error=exc
        )

    # -- online updates -----------------------------------------------------

    def add_trajectory(self, trajectory, *, validate: bool = False) -> int:
        """Insert one trajectory online and invalidate every cached answer
        (any of them could now be stale — new matches may exist).

        Returns the new global trajectory id.
        """
        tid = self._engine.add_trajectory(trajectory, validate=validate)
        self.metrics.observe_invalidation(self.cache.clear())
        return tid

    def invalidate(self) -> int:
        """Explicit invalidation hook: drop every cached answer (for
        callers that mutate the engine directly).  Returns entries
        dropped."""
        dropped = self.cache.clear()
        self.metrics.observe_invalidation(dropped)
        return dropped

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Metrics snapshot enriched with cache and engine facts."""
        snap = self.metrics.snapshot()
        snap["cache_size"] = len(self.cache)
        snap["cache_capacity"] = self.cache.capacity
        snap["pending"] = self.executor.pending
        num_shards = getattr(self._engine, "num_shards", 1)
        snap["num_shards"] = num_shards
        snap["backend"] = getattr(self._engine, "backend", "single")
        snap["dp_backend"] = getattr(self._engine, "dp_backend", "")
        snap["coalesced_retries"] = (
            self.batcher.retried_followers if self.batcher is not None else 0
        )
        # One combined snapshot: on the processes backend the worker
        # pipes are polled once, and both caches report the same moment.
        cache_stats = getattr(self._engine, "cache_stats", None)
        if cache_stats is not None:
            combined = cache_stats()
            snap["substitution_cache"] = combined["substitution"]
            snap["trie_cache"] = combined["trie"]
        snap["observability"] = {
            "trace_sample_rate": self.observability.tracer.sample_rate,
            "slow_query_seconds": self.observability.slow_query_seconds,
            "flight_recorder": self.observability.recorder.stats(),
        }
        return snap
