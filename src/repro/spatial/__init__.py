"""Spatial indexing substrate.

The paper uses a kd-tree (or R-tree) to answer the range queries that
compute substitution neighborhoods ``B(q)`` for coordinate-based cost
functions (EDR, ERP), and the ERP-index baseline stores coordinate sums in
a kd-tree.  Both structures are implemented from scratch here.
"""

from repro.spatial.geometry import BoundingBox, Point, euclidean, squared_euclidean
from repro.spatial.kdtree import KDTree
from repro.spatial.rtree import RTree

__all__ = [
    "BoundingBox",
    "KDTree",
    "Point",
    "RTree",
    "euclidean",
    "squared_euclidean",
]
