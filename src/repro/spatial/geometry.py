"""Primitive planar geometry used across the library.

Coordinates live in the plane (the paper associates an ``R^2`` coordinate
with every road-network vertex).  Points are plain ``(x, y)`` tuples so that
they can be stored compactly in lists and numpy arrays; this module provides
the small set of operations the rest of the library needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

Point = Tuple[float, float]


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two planar points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def squared_euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance (avoids the sqrt in hot comparison loops)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def padded_radius(radius: float) -> float:
    """``radius`` widened by a few ulps, for conservative range pruning.

    Membership in a range search is decided by the *rounded* Euclidean
    distance (``euclidean`` / ``math.hypot``), which can report exactly
    ``radius`` for a point whose true distance lies a hair outside any
    exact-arithmetic bound.  Every spatial-index prune (and any caller
    re-filtering a padded search with its own predicate — e.g.
    ``EDRCost.neighbors``) must therefore use this shared pad; tuning it
    in one place keeps their soundness arguments in sync."""
    return radius + 1e-9 * (radius + 1.0)


def centroid(points: Iterable[Sequence[float]]) -> Point:
    """Barycenter of a non-empty collection of points.

    Used as the default ERP reference point ``g`` (§2.2.2 suggests the
    barycenter of the vertices).
    """
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p[0]
        ys += p[1]
        n += 1
    if n == 0:
        raise ValueError("centroid of empty point set")
    return (xs / n, ys / n)


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"degenerate bounding box: {self}")

    @staticmethod
    def from_points(points: Iterable[Sequence[float]]) -> "BoundingBox":
        """The tightest box covering a non-empty point collection."""
        xs, ys = [], []
        for p in points:
            xs.append(p[0])
            ys.append(p[1])
        if not xs:
            raise ValueError("bounding box of empty point set")
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))

    def contains(self, p: Sequence[float]) -> bool:
        """Closed containment test for a point."""
        return self.xmin <= p[0] <= self.xmax and self.ymin <= p[1] <= self.ymax

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether two boxes share any point (boundaries count)."""
        return not (
            other.xmax < self.xmin
            or other.xmin > self.xmax
            or other.ymax < self.ymin
            or other.ymin > self.ymax
        )

    def expanded(self, other: "BoundingBox") -> "BoundingBox":
        """The smallest box covering both ``self`` and ``other``."""
        return BoundingBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def min_distance(self, p: Sequence[float]) -> float:
        """Minimum Euclidean distance from ``p`` to this box (0 if inside)."""
        dx = max(self.xmin - p[0], 0.0, p[0] - self.xmax)
        dy = max(self.ymin - p[1], 0.0, p[1] - self.ymax)
        return math.hypot(dx, dy)

    @property
    def area(self) -> float:
        """Box area."""
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase if this box were expanded to cover ``other``."""
        return self.expanded(other).area - self.area
