"""A static 2-d kd-tree with range and nearest-neighbor queries.

The paper (§4.2, Fig. 2) indexes vertex coordinates in a kd-tree to compute
substitution neighborhoods ``B(q)`` by range search for EDR/ERP, and to find
the nearest symbol *outside* a neighborhood when evaluating the filtering
cost ``c(q)`` for ERP (§3.1: "For ERP, the complexity is O(log |V|) using a
kd-tree").  The ERP-index baseline (§6.1) also stores coordinate sums here.

The tree is built once over a fixed point set (median splits, so the tree is
balanced) and is immutable afterwards, which matches how the paper uses it:
road networks do not change during a query workload.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.spatial.geometry import Point, euclidean, padded_radius

__all__ = ["KDTree"]

_LEAF_SIZE = 16


class _Node:
    __slots__ = ("axis", "split", "left", "right", "indices", "xmin", "xmax", "ymin", "ymax")

    def __init__(self) -> None:
        self.axis: int = -1
        self.split: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.indices: Optional[List[int]] = None
        self.xmin = self.ymin = math.inf
        self.xmax = self.ymax = -math.inf

    def min_distance(self, p: Sequence[float]) -> float:
        """Distance from ``p`` to this node's bounding box (0 inside)."""
        dx = max(self.xmin - p[0], 0.0, p[0] - self.xmax)
        dy = max(self.ymin - p[1], 0.0, p[1] - self.ymax)
        return math.hypot(dx, dy)


class KDTree:
    """Balanced 2-d tree over a list of points.

    Points are addressed by their integer position in the input list; query
    results return those indices, which callers map back to vertex ids.

    >>> tree = KDTree([(0, 0), (1, 1), (2, 2)])
    >>> sorted(tree.range_search((1, 1), 0.5))
    [1]
    >>> tree.nearest((1.9, 1.9))
    (2, ...)
    """

    def __init__(self, points: Sequence[Point]) -> None:
        if not points:
            raise ValueError("KDTree requires at least one point")
        self._points: List[Point] = [(float(p[0]), float(p[1])) for p in points]
        self._root = self._build(list(range(len(self._points))), depth=0)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> Sequence[Point]:
        """The indexed points, by insertion order."""
        return self._points

    # -- construction ------------------------------------------------------

    def _build(self, idxs: List[int], depth: int) -> _Node:
        node = _Node()
        pts = self._points
        for i in idxs:
            x, y = pts[i]
            node.xmin = min(node.xmin, x)
            node.xmax = max(node.xmax, x)
            node.ymin = min(node.ymin, y)
            node.ymax = max(node.ymax, y)
        if len(idxs) <= _LEAF_SIZE:
            node.indices = idxs
            return node
        axis = depth % 2
        idxs.sort(key=lambda i: pts[i][axis])
        mid = len(idxs) // 2
        node.axis = axis
        node.split = pts[idxs[mid]][axis]
        node.left = self._build(idxs[:mid], depth + 1)
        node.right = self._build(idxs[mid:], depth + 1)
        return node

    # -- queries -----------------------------------------------------------

    def range_search(self, center: Sequence[float], radius: float) -> List[int]:
        """Indices of all points with Euclidean distance <= ``radius``."""
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        out: List[int] = []
        pts = self._points
        stack = [self._root]
        cx, cy = center[0], center[1]
        # Prune conservatively: membership is decided by the *rounded*
        # hypot below, which can report exactly ``radius`` for a point a
        # few ulps outside the exact bound.
        prune = padded_radius(radius)
        while stack:
            node = stack.pop()
            if node.min_distance(center) > prune:
                continue
            if node.indices is not None:
                for i in node.indices:
                    x, y = pts[i]
                    # hypot, not the squared form: squaring underflows for
                    # denormal offsets (d > 0 would pass a radius-0 search)
                    # and must match the euclidean() contract bit-for-bit.
                    if math.hypot(x - cx, y - cy) <= radius:
                        out.append(i)
            else:
                stack.append(node.left)  # type: ignore[arg-type]
                stack.append(node.right)  # type: ignore[arg-type]
        return out

    def nearest(self, target: Sequence[float]) -> Tuple[int, float]:
        """The index and distance of the point closest to ``target``."""
        result = self.k_nearest(target, 1)
        return result[0]

    def k_nearest(self, target: Sequence[float], k: int) -> List[Tuple[int, float]]:
        """The ``k`` points closest to ``target`` as ``(index, distance)``.

        Results are sorted by increasing distance; fewer than ``k`` entries
        are returned when the tree is smaller than ``k``.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        best: List[Tuple[float, int]] = []  # max-heap via negated distance
        pts = self._points

        def visit(node: _Node) -> None:
            if len(best) == k and node.min_distance(target) >= -best[0][0]:
                return
            if node.indices is not None:
                for i in node.indices:
                    d = euclidean(pts[i], target)
                    if len(best) < k:
                        heapq.heappush(best, (-d, i))
                    elif d < -best[0][0]:
                        heapq.heapreplace(best, (-d, i))
                return
            axis, split = node.axis, node.split
            near, far = (
                (node.left, node.right)
                if target[axis] <= split
                else (node.right, node.left)
            )
            visit(near)  # type: ignore[arg-type]
            visit(far)  # type: ignore[arg-type]

        visit(self._root)
        return sorted(((i, -nd) for nd, i in best), key=lambda t: (t[1], t[0]))

    def nearest_outside(
        self,
        target: Sequence[float],
        radius: float,
        predicate: Optional[Callable[[int], bool]] = None,
    ) -> Optional[Tuple[int, float]]:
        """Closest point strictly farther than ``radius`` from ``target``.

        This answers the ERP filtering-cost query ``c(q) = min substitution
        cost to a symbol outside B(q)`` (Eq. 7): ``B(q)`` is the closed ball
        of radius eta, so the cheapest substitution outside it goes to the
        nearest point at distance > eta.  ``predicate`` can further restrict
        admissible points.  Returns ``None`` when no point qualifies.
        """
        best_i = -1
        best_d = math.inf
        pts = self._points
        heap: List[Tuple[float, int, _Node]] = [(self._root.min_distance(target), 0, self._root)]
        counter = 1
        while heap:
            lb, _, node = heapq.heappop(heap)
            if lb >= best_d:
                break
            if node.indices is not None:
                for i in node.indices:
                    if predicate is not None and not predicate(i):
                        continue
                    d = euclidean(pts[i], target)
                    if d > radius and d < best_d:
                        best_d = d
                        best_i = i
            else:
                for child in (node.left, node.right):
                    assert child is not None
                    heapq.heappush(heap, (child.min_distance(target), counter, child))
                    counter += 1
        if best_i < 0:
            return None
        return best_i, best_d
