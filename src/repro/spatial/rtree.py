"""An R-tree with Sort-Tile-Recursive (STR) bulk loading.

The paper mentions the R-tree as an alternative to the kd-tree for the
spatial side-index (§4.2).  We provide it for parity and use it in tests as
an independent oracle for range queries.  Rectangles (not just points) are
supported so edges can be indexed by their bounding boxes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.spatial.geometry import BoundingBox, padded_radius

__all__ = ["RTree"]

_MAX_ENTRIES = 16


class _RNode:
    __slots__ = ("box", "children", "entries")

    def __init__(self, box: BoundingBox) -> None:
        self.box = box
        self.children: List["_RNode"] = []
        self.entries: List[Tuple[int, BoundingBox]] = []

    @property
    def is_leaf(self) -> bool:
        """Leaf nodes hold entries; internal nodes hold children."""
        return not self.children


class RTree:
    """Static R-tree over ``(id, BoundingBox)`` entries, STR bulk-loaded.

    >>> tree = RTree([(7, BoundingBox(0, 0, 1, 1))])
    >>> tree.search(BoundingBox(0.5, 0.5, 2, 2))
    [7]
    """

    def __init__(self, entries: Sequence[Tuple[int, BoundingBox]]) -> None:
        if not entries:
            raise ValueError("RTree requires at least one entry")
        leaves = self._build_leaves(list(entries))
        while len(leaves) > 1:
            leaves = self._build_level(leaves)
        self._root = leaves[0]
        self._size = len(entries)

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _center(box: BoundingBox) -> Tuple[float, float]:
        return ((box.xmin + box.xmax) / 2.0, (box.ymin + box.ymax) / 2.0)

    def _build_leaves(self, entries: List[Tuple[int, BoundingBox]]) -> List[_RNode]:
        n = len(entries)
        n_leaves = math.ceil(n / _MAX_ENTRIES)
        n_slices = math.ceil(math.sqrt(n_leaves))
        entries.sort(key=lambda e: self._center(e[1])[0])
        slice_size = math.ceil(n / n_slices)
        leaves: List[_RNode] = []
        for s in range(0, n, slice_size):
            chunk = sorted(entries[s : s + slice_size], key=lambda e: self._center(e[1])[1])
            for t in range(0, len(chunk), _MAX_ENTRIES):
                group = chunk[t : t + _MAX_ENTRIES]
                box = group[0][1]
                for _, b in group[1:]:
                    box = box.expanded(b)
                node = _RNode(box)
                node.entries = group
                leaves.append(node)
        return leaves

    def _build_level(self, nodes: List[_RNode]) -> List[_RNode]:
        n = len(nodes)
        n_parents = math.ceil(n / _MAX_ENTRIES)
        n_slices = math.ceil(math.sqrt(n_parents))
        nodes.sort(key=lambda nd: self._center(nd.box)[0])
        slice_size = math.ceil(n / n_slices)
        parents: List[_RNode] = []
        for s in range(0, n, slice_size):
            chunk = sorted(nodes[s : s + slice_size], key=lambda nd: self._center(nd.box)[1])
            for t in range(0, len(chunk), _MAX_ENTRIES):
                group = chunk[t : t + _MAX_ENTRIES]
                box = group[0].box
                for nd in group[1:]:
                    box = box.expanded(nd.box)
                parent = _RNode(box)
                parent.children = group
                parents.append(parent)
        return parents

    def search(self, query: BoundingBox) -> List[int]:
        """Ids of all entries whose boxes intersect ``query``."""
        out: List[int] = []
        stack: List[_RNode] = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(query):
                continue
            if node.is_leaf:
                out.extend(eid for eid, box in node.entries if box.intersects(query))
            else:
                stack.extend(node.children)
        return out

    def range_search(self, center: Sequence[float], radius: float) -> List[int]:
        """Ids of point entries within Euclidean ``radius`` of ``center``.

        Assumes entries were inserted as degenerate (point) boxes; the final
        distance check uses the box's lower-left corner.
        """
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        # Pad the pruning box by a few ulps: membership is decided by the
        # *rounded* hypot below, which can report exactly ``radius`` for a
        # point whose true distance is a hair outside the exact box.
        pad = padded_radius(radius)
        query = BoundingBox(
            center[0] - pad, center[1] - pad, center[0] + pad, center[1] + pad
        )
        out: List[int] = []
        stack: List[_RNode] = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(query):
                continue
            if node.is_leaf:
                for eid, box in node.entries:
                    # hypot, not the squared form: squaring underflows for
                    # denormal offsets (d > 0 would pass a radius-0 search)
                    # and must match the euclidean() contract bit-for-bit.
                    if (
                        math.hypot(box.xmin - center[0], box.ymin - center[1])
                        <= radius
                    ):
                        out.append(eid)
            else:
                stack.extend(node.children)
        return out
