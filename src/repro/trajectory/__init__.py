"""Trajectory substrate.

A trajectory is a pair ``(P, T)``: a path ``P`` on the road network and a
timestamp per vertex (Definition 1).  This package provides the data model,
the dataset container the engine indexes, a Brinkhoff-style synthetic trip
generator (substituting for the taxi datasets), a GPS noise model, and HMM
map matching (Newson–Krumm) to convert noisy coordinate tracks back into
network-constrained paths — the same preprocessing pipeline the paper
applies to Beijing and Porto (§6.1).
"""

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.generator import TripGenerator
from repro.trajectory.mapmatch import HMMMapMatcher
from repro.trajectory.model import Trajectory
from repro.trajectory.noise import gps_noise, resample

__all__ = [
    "HMMMapMatcher",
    "Trajectory",
    "TrajectoryDataset",
    "TripGenerator",
    "gps_noise",
    "resample",
]
