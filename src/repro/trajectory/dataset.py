"""The trajectory database ``T = {(P^(id), T^(id))}`` (§2.3).

:class:`TrajectoryDataset` is the container the search engine indexes.  It
supports both the vertex and the edge representation transparently: the
engine asks for ``symbols(id)`` and receives the string over the configured
alphabet.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Literal, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import TrajectoryError
from repro.network.graph import RoadNetwork
from repro.trajectory.model import Trajectory

__all__ = ["TrajectoryDataset"]

Representation = Literal["vertex", "edge"]


class TrajectoryDataset:
    """An in-memory collection of trajectories over one road network.

    ``representation`` selects the alphabet used by ``symbols``:
    ``"vertex"`` strings are the paths themselves, ``"edge"`` strings are
    edge-id sequences (one symbol shorter).  Edge strings are materialized
    lazily and cached, since verification touches them repeatedly.
    """

    def __init__(
        self,
        graph: RoadNetwork,
        representation: Representation = "vertex",
    ) -> None:
        if representation not in ("vertex", "edge"):
            raise ValueError(f"unknown representation {representation!r}")
        self._graph = graph
        self._repr: Representation = representation
        self._trajectories: List[Trajectory] = []
        self._edge_strings: List[Optional[Tuple[int, ...]]] = []
        self._symbol_arrays: List[Optional[np.ndarray]] = []

    # -- population -----------------------------------------------------------

    def add(self, trajectory: Trajectory, *, validate: bool = False) -> int:
        """Append a trajectory and return its id (dense ints from 0)."""
        if validate:
            trajectory.validate(self._graph)
        if self._repr == "edge" and len(trajectory) < 2:
            raise TrajectoryError("edge representation requires paths of length >= 2")
        self._trajectories.append(trajectory)
        self._edge_strings.append(None)
        self._symbol_arrays.append(None)
        return len(self._trajectories) - 1

    def extend(self, trajectories: Sequence[Trajectory], *, validate: bool = False) -> None:
        """Append many trajectories."""
        for t in trajectories:
            self.add(t, validate=validate)

    # -- accessors --------------------------------------------------------------

    @property
    def graph(self) -> RoadNetwork:
        """The road network the trajectories live on."""
        return self._graph

    @property
    def representation(self) -> Representation:
        """The configured alphabet: "vertex" or "edge"."""
        return self._repr

    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajectories)

    def __getitem__(self, tid: int) -> Trajectory:
        return self._trajectories[tid]

    def symbols(self, tid: int) -> Sequence[int]:
        """The string for trajectory ``tid`` over the configured alphabet."""
        if self._repr == "vertex":
            return self._trajectories[tid].path
        cached = self._edge_strings[tid]
        if cached is None:
            cached = tuple(self._trajectories[tid].edge_representation(self._graph))
            self._edge_strings[tid] = cached
        return cached

    def symbols_array(self, tid: int) -> np.ndarray:
        """:meth:`symbols` as a memoized ``np.int32`` array.

        The array-native verification path slices these into zero-copy
        forward/backward views per candidate, so the conversion happens
        once per trajectory per dataset rather than once per candidate.
        Callers must treat the array as read-only."""
        arr = self._symbol_arrays[tid]
        if arr is None:
            arr = np.asarray(self.symbols(tid), dtype=np.int32)
            self._symbol_arrays[tid] = arr
        return arr

    def prime_edge_cache(self, tid: int, edges: Sequence[int]) -> None:
        """Seed the lazy edge-symbol cache for ``tid``.

        For callers (the engine's online insert) that already forced the
        edge conversion — e.g. to fail *before* committing the trajectory
        — so :meth:`symbols` never converts twice."""
        if self._repr != "edge":
            raise TrajectoryError("edge cache exists only for edge representation")
        self._edge_strings[tid] = tuple(edges)

    def alphabet_size(self) -> int:
        """|Sigma|: number of vertices or edges depending on representation."""
        if self._repr == "vertex":
            return self._graph.num_vertices
        return self._graph.num_edges

    def total_symbols(self) -> int:
        """Total string length over the dataset (index size driver)."""
        return sum(len(self.symbols(i)) for i in range(len(self)))

    def average_length(self) -> float:
        """Mean string length over the dataset (Table 2's avg |P|)."""
        if not self._trajectories:
            return 0.0
        return self.total_symbols() / len(self._trajectories)

    def statistics(self) -> dict:
        """Dataset statistics in the shape of the paper's Table 2."""
        return {
            "num_trajectories": len(self),
            "avg_length": round(self.average_length(), 1),
            "num_vertices": self._graph.num_vertices,
            "num_edges": self._graph.num_edges,
        }

    # -- persistence ---------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write trajectories as JSON lines (graph saved separately)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as f:
            f.write(json.dumps({"representation": self._repr, "count": len(self)}) + "\n")
            for t in self._trajectories:
                rec = {"path": list(t.path)}
                if t.timestamps is not None:
                    rec["timestamps"] = list(t.timestamps)
                f.write(json.dumps(rec) + "\n")

    @staticmethod
    def load(graph: RoadNetwork, path: Union[str, Path]) -> "TrajectoryDataset":
        """Read a dataset previously written by :meth:`save`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as f:
            header = json.loads(f.readline())
            ds = TrajectoryDataset(graph, header.get("representation", "vertex"))
            for line in f:
                rec = json.loads(line)
                ds.add(Trajectory(rec["path"], rec.get("timestamps")))
        if len(ds) != header.get("count", len(ds)):
            raise TrajectoryError(f"{path}: truncated dataset")
        return ds
