"""Brinkhoff-style synthetic trip generator.

The SanFran dataset in the paper comes from Brinkhoff's network-based
moving-object generator [4]; the taxi datasets are real trips.  This module
substitutes for both: it samples origin/destination pairs (optionally biased
toward a set of "hub" vertices so that popular corridors emerge, which is
what gives the bidirectional-trie cache its hit rate), routes each trip with
a shortest path through a random detour waypoint, and assigns timestamps
from per-edge speeds with log-normal noise.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.exceptions import TrajectoryError
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import shortest_path
from repro.trajectory.model import Trajectory

__all__ = ["TripGenerator"]


class TripGenerator:
    """Generates network-constrained trips with timestamps.

    Parameters
    ----------
    graph:
        The road network to travel on.
    speed:
        Nominal speed in weight-units per second (edge travel time is
        ``weight / speed`` before noise).
    hub_fraction / hub_bias:
        A ``hub_fraction`` of vertices are designated hubs; each trip
        endpoint is a hub with probability ``hub_bias``.  This concentrates
        traffic on shared corridors like real taxi data.
    detour_prob:
        Probability that a trip routes through a random intermediate
        waypoint instead of the direct shortest path, creating the
        route variation that similarity search must tolerate.
    """

    def __init__(
        self,
        graph: RoadNetwork,
        *,
        speed: float = 10.0,
        hub_fraction: float = 0.05,
        hub_bias: float = 0.6,
        detour_prob: float = 0.35,
        time_noise: float = 0.25,
        seed: int = 0,
    ) -> None:
        if graph.num_vertices < 2:
            raise TrajectoryError("graph too small to generate trips")
        self._graph = graph
        self._speed = speed
        self._detour_prob = detour_prob
        self._time_noise = time_noise
        self._rng = random.Random(seed)
        n_hubs = max(1, int(graph.num_vertices * hub_fraction))
        self._hubs = self._rng.sample(range(graph.num_vertices), n_hubs)
        self._hub_bias = hub_bias

    def _sample_endpoint(self) -> int:
        if self._rng.random() < self._hub_bias:
            return self._rng.choice(self._hubs)
        return self._rng.randrange(self._graph.num_vertices)

    def _route(self, origin: int, dest: int) -> Optional[List[int]]:
        if self._rng.random() < self._detour_prob:
            waypoint = self._rng.randrange(self._graph.num_vertices)
            first = shortest_path(self._graph, origin, waypoint)
            second = shortest_path(self._graph, waypoint, dest)
            if first and second and len(first) + len(second) > 2:
                return first + second[1:]
        return shortest_path(self._graph, origin, dest)

    def _timestamps(self, path: Sequence[int], depart: float) -> List[float]:
        ts = [depart]
        g = self._graph
        for a, b in zip(path, path[1:]):
            w = g.edge(g.edge_id(a, b)).weight
            base = w / self._speed
            noise = math.exp(self._rng.gauss(0.0, self._time_noise))
            ts.append(ts[-1] + max(1e-6, base * noise))
        return ts

    def generate_trip(
        self,
        *,
        min_length: int = 5,
        max_length: int = 200,
        depart: Optional[float] = None,
    ) -> Trajectory:
        """One trip whose path length lies in ``[min_length, max_length]``.

        Longer routes are truncated to ``max_length``; sampling retries until
        a route of at least ``min_length`` vertices is found.
        """
        if depart is None:
            depart = self._rng.uniform(0.0, 86_400.0)  # within one day
        for _ in range(200):
            origin = self._sample_endpoint()
            dest = self._sample_endpoint()
            if origin == dest:
                continue
            route = self._route(origin, dest)
            if route is None:
                continue
            # Trips longer than the network diameter are built by chaining
            # further destinations (a taxi shift visiting several places).
            extensions = 0
            while len(route) < min_length and extensions < 12:
                nxt = self._sample_endpoint()
                if nxt == route[-1]:
                    continue
                leg = shortest_path(self._graph, route[-1], nxt)
                if leg is None or len(leg) < 2:
                    extensions += 1
                    continue
                route = route + leg[1:]
                extensions += 1
            if len(route) < min_length:
                continue
            if len(route) > max_length:
                start = self._rng.randrange(0, len(route) - max_length + 1)
                route = route[start : start + max_length]
            return Trajectory(route, self._timestamps(route, depart))
        raise TrajectoryError(
            "could not generate a trip: graph may be too small or disconnected"
        )

    def generate(
        self,
        count: int,
        *,
        min_length: int = 5,
        max_length: int = 200,
        time_horizon: float = 86_400.0,
    ) -> List[Trajectory]:
        """``count`` trips with departures uniform in ``[0, time_horizon)``."""
        return [
            self.generate_trip(
                min_length=min_length,
                max_length=max_length,
                depart=self._rng.uniform(0.0, time_horizon),
            )
            for _ in range(count)
        ]
