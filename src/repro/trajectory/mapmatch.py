"""HMM map matching (Newson & Krumm, 2009).

Converts a noisy GPS coordinate sequence into a network-constrained vertex
path — the preprocessing the paper applies to the Beijing and Porto raw
trajectories (§2.1 and §6.1 cite [34]).  The implementation matches the
original formulation:

- *candidates* per observation: vertices within ``candidate_radius``;
- *emission*: Gaussian in the distance between observation and candidate;
- *transition*: exponential in the absolute difference between the network
  distance of consecutive candidates and the great-circle (here Euclidean)
  distance between the observations;
- Viterbi decoding, followed by stitching consecutive matched vertices with
  shortest paths to produce a connected route.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.exceptions import MapMatchError
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import bounded_dijkstra, shortest_path
from repro.spatial.geometry import Point, euclidean
from repro.spatial.kdtree import KDTree
from repro.trajectory.model import Trajectory

__all__ = ["HMMMapMatcher"]


class HMMMapMatcher:
    """Viterbi map matcher over vertex candidates.

    Parameters mirror Newson–Krumm: ``sigma`` is the GPS noise standard
    deviation (emission), ``beta`` the transition scale, and
    ``candidate_radius`` bounds the candidate search.
    """

    def __init__(
        self,
        graph: RoadNetwork,
        *,
        sigma: float = 10.0,
        beta: float = 30.0,
        candidate_radius: float = 60.0,
        max_candidates: int = 8,
    ) -> None:
        self._graph = graph
        self._sigma = sigma
        self._beta = beta
        self._radius = candidate_radius
        self._max_candidates = max_candidates
        self._tree = KDTree(list(graph.coords))

    # -- HMM pieces -------------------------------------------------------

    def _candidates(self, obs: Point) -> List[int]:
        cands = self._tree.range_search(obs, self._radius)
        if not cands:
            nearest, _ = self._tree.nearest(obs)
            return [nearest]
        cands.sort(key=lambda v: euclidean(self._graph.coord(v), obs))
        return cands[: self._max_candidates]

    def _log_emission(self, obs: Point, v: int) -> float:
        d = euclidean(self._graph.coord(v), obs)
        return -0.5 * (d / self._sigma) ** 2

    def _log_transition(self, prev_obs: Point, obs: Point, route_dist: float) -> float:
        if math.isinf(route_dist):
            return -math.inf
        great_circle = euclidean(prev_obs, obs)
        return -abs(route_dist - great_circle) / self._beta

    def match(self, observations: Sequence[Point]) -> Trajectory:
        """Decode the most likely vertex path for ``observations``.

        Raises :class:`MapMatchError` when the HMM breaks (no connected
        candidate chain) — callers typically drop such tracks, as the paper's
        preprocessing does.
        """
        if not observations:
            raise MapMatchError("no observations")
        layers = [self._candidates(o) for o in observations]
        # Viterbi over log-probabilities.
        score: Dict[int, float] = {v: self._log_emission(observations[0], v) for v in layers[0]}
        back: List[Dict[int, int]] = []
        for t in range(1, len(observations)):
            obs, prev_obs = observations[t], observations[t - 1]
            # Network distances from every previous candidate, bounded by a
            # generous multiple of the observation gap.
            gap = euclidean(prev_obs, obs)
            bound = 3.0 * gap + 4.0 * self._radius
            reach: Dict[int, Dict[int, float]] = {
                u: bounded_dijkstra(self._graph, u, bound) for u in score
            }
            new_score: Dict[int, float] = {}
            new_back: Dict[int, int] = {}
            for v in layers[t]:
                emit = self._log_emission(obs, v)
                best_u, best_val = -1, -math.inf
                for u, s in score.items():
                    route = reach[u].get(v, math.inf)
                    val = s + self._log_transition(prev_obs, obs, route)
                    if val > best_val:
                        best_u, best_val = u, val
                if best_u >= 0 and best_val > -math.inf:
                    new_score[v] = best_val + emit
                    new_back[v] = best_u
            if not new_score:
                raise MapMatchError(f"HMM broke at observation {t}")
            score = new_score
            back.append(new_back)
        # Backtrace.
        end = max(score, key=lambda v: score[v])
        matched = [end]
        for tb in reversed(back):
            matched.append(tb[matched[-1]])
        matched.reverse()
        return self._stitch(matched)

    def _stitch(self, matched: List[int]) -> Trajectory:
        """Connect consecutive matched vertices with shortest paths."""
        route: List[int] = [matched[0]]
        for u, v in zip(matched, matched[1:]):
            if u == v:
                continue
            seg = shortest_path(self._graph, u, v)
            if seg is None:
                raise MapMatchError(f"no path between matched vertices {u} and {v}")
            route.extend(seg[1:])
        return Trajectory(route)
