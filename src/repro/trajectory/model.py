"""The trajectory data model (Definition 1).

A :class:`Trajectory` stores a vertex path plus one timestamp per vertex.
The engine treats a trajectory as a string over the vertex alphabet or,
equivalently, over the edge alphabet (§2.1); conversion between the two
representations requires the road network and is provided here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import TrajectoryError
from repro.network.graph import RoadNetwork

__all__ = ["Trajectory"]


class Trajectory:
    """A network-constrained trajectory ``(P, T)``.

    ``path`` is the vertex representation; ``timestamps`` (optional) must be
    non-decreasing and as long as the path.  Instances are immutable.

    >>> t = Trajectory([3, 4, 5], timestamps=[0.0, 10.0, 25.0])
    >>> len(t), t.duration
    (3, 25.0)
    """

    __slots__ = ("_path", "_timestamps")

    def __init__(
        self,
        path: Sequence[int],
        timestamps: Optional[Sequence[float]] = None,
    ) -> None:
        if len(path) == 0:
            raise TrajectoryError("empty trajectory")
        self._path: Tuple[int, ...] = tuple(int(v) for v in path)
        if timestamps is not None:
            if len(timestamps) != len(path):
                raise TrajectoryError(
                    f"timestamps length {len(timestamps)} != path length {len(path)}"
                )
            ts = tuple(float(t) for t in timestamps)
            if any(b < a for a, b in zip(ts, ts[1:])):
                raise TrajectoryError("timestamps must be non-decreasing")
            self._timestamps: Optional[Tuple[float, ...]] = ts
        else:
            self._timestamps = None

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._path)

    def __getitem__(self, i: int) -> int:
        return self._path[i]

    def __iter__(self):
        return iter(self._path)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return self._path == other._path and self._timestamps == other._timestamps

    def __hash__(self) -> int:
        return hash((self._path, self._timestamps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ts = "with timestamps" if self._timestamps else "no timestamps"
        return f"Trajectory(len={len(self._path)}, {ts})"

    # -- accessors -------------------------------------------------------------

    @property
    def path(self) -> Tuple[int, ...]:
        """Vertex representation of the path."""
        return self._path

    @property
    def timestamps(self) -> Optional[Tuple[float, ...]]:
        """Per-vertex timestamps, or None for untimed trajectories."""
        return self._timestamps

    @property
    def start_time(self) -> float:
        """Departure time ``T_1``."""
        self._require_timestamps()
        return self._timestamps[0]  # type: ignore[index]

    @property
    def end_time(self) -> float:
        """Arrival time ``T_n``."""
        self._require_timestamps()
        return self._timestamps[-1]  # type: ignore[index]

    @property
    def duration(self) -> float:
        """End-to-end travel time."""
        self._require_timestamps()
        return self._timestamps[-1] - self._timestamps[0]  # type: ignore[index]

    def travel_time(self, i: int, j: int) -> float:
        """Travel time of the subtrajectory between vertex indices i..j
        (inclusive, 0-based) — ``T_j - T_i`` in the paper's notation."""
        self._require_timestamps()
        if not 0 <= i <= j < len(self._path):
            raise TrajectoryError(f"bad subtrajectory bounds ({i}, {j})")
        return self._timestamps[j] - self._timestamps[i]  # type: ignore[index]

    def time_interval(self) -> Tuple[float, float]:
        """The whole-trajectory interval ``[T_1, T_n]`` used by the temporal
        candidate filter (§4.3)."""
        self._require_timestamps()
        return (self._timestamps[0], self._timestamps[-1])  # type: ignore[index]

    def _require_timestamps(self) -> None:
        if self._timestamps is None:
            raise TrajectoryError("trajectory has no timestamps")

    # -- representations ---------------------------------------------------------

    def subtrajectory(self, i: int, j: int) -> "Trajectory":
        """The subtrajectory from vertex index ``i`` to ``j`` inclusive."""
        if not 0 <= i <= j < len(self._path):
            raise TrajectoryError(f"bad subtrajectory bounds ({i}, {j})")
        ts = self._timestamps[i : j + 1] if self._timestamps else None
        return Trajectory(self._path[i : j + 1], ts)

    def edge_representation(self, graph: RoadNetwork) -> List[int]:
        """The edge-id string ``e_1 .. e_{n-1}`` for this path (§2.1)."""
        return graph.path_to_edges(self._path)

    def validate(self, graph: RoadNetwork) -> None:
        """Raise :class:`TrajectoryError` unless the path is a real walk on
        ``graph`` (consecutive vertices connected by edges)."""
        if not graph.is_path(self._path):
            raise TrajectoryError("trajectory is not a path on the graph")

    @staticmethod
    def from_edges(
        graph: RoadNetwork,
        edge_ids: Sequence[int],
        timestamps: Optional[Sequence[float]] = None,
    ) -> "Trajectory":
        """Build a trajectory from its edge representation."""
        verts = graph.edges_to_path(list(edge_ids))
        if not verts:
            raise TrajectoryError("empty edge sequence")
        return Trajectory(verts, timestamps)
