"""GPS observation model: noising and resampling of trajectories.

Real GPS tracks are noisy coordinate sequences, not vertex paths; the paper
recovers paths with HMM map matching (§2.1, §6.1).  To exercise that
pipeline end-to-end we need the inverse operation: project a ground-truth
path into noisy coordinate observations.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.network.graph import RoadNetwork
from repro.spatial.geometry import Point
from repro.trajectory.model import Trajectory

__all__ = ["gps_noise", "resample"]


def gps_noise(
    graph: RoadNetwork,
    trajectory: Trajectory,
    *,
    sigma: float = 10.0,
    seed: int = 0,
) -> List[Point]:
    """Gaussian-perturbed coordinates of the trajectory's vertices.

    ``sigma`` is the standard deviation (same units as the coordinates) of
    independent x/y noise — the standard GPS error model used by
    Newson–Krumm map matching.
    """
    rng = random.Random(seed)
    out: List[Point] = []
    for v in trajectory.path:
        x, y = graph.coord(v)
        out.append((x + rng.gauss(0.0, sigma), y + rng.gauss(0.0, sigma)))
    return out


def resample(points: Sequence[Point], keep_every: int) -> List[Point]:
    """Keep every ``keep_every``-th observation (plus the last one).

    Simulates low-frequency sampling, one of the data issues (sampling
    strategies) similarity queries are meant to tolerate (§1).
    """
    if keep_every < 1:
        raise ValueError("keep_every must be >= 1")
    out = list(points[::keep_every])
    if points and (len(points) - 1) % keep_every != 0:
        out.append(points[-1])
    return out
