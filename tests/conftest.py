"""Shared fixtures: small deterministic graphs, datasets, and cost models."""

from __future__ import annotations

import random

import pytest

from repro.distance.costs import (
    EDRCost,
    ERPCost,
    LevenshteinCost,
    NetEDRCost,
    NetERPCost,
    SURSCost,
)
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.generator import TripGenerator


@pytest.fixture(scope="session")
def small_graph() -> RoadNetwork:
    """An 8x8 jittered grid (about 64 vertices, 200+ edges)."""
    return grid_city(8, 8, seed=42)


@pytest.fixture(scope="session")
def line_graph() -> RoadNetwork:
    """A bidirectional 6-vertex line: simple hand-checkable topology."""
    g = RoadNetwork()
    for i in range(6):
        g.add_vertex((float(i), 0.0))
    for i in range(5):
        g.add_edge(i, i + 1, 1.0)
        g.add_edge(i + 1, i, 1.0)
    return g


@pytest.fixture(scope="session")
def trips(small_graph):
    gen = TripGenerator(small_graph, seed=7)
    return gen.generate(30, min_length=5, max_length=30)


@pytest.fixture(scope="session")
def vertex_dataset(small_graph, trips) -> TrajectoryDataset:
    ds = TrajectoryDataset(small_graph, "vertex")
    ds.extend(trips)
    return ds


@pytest.fixture(scope="session")
def edge_dataset(small_graph, trips) -> TrajectoryDataset:
    ds = TrajectoryDataset(small_graph, "edge")
    ds.extend(trips)
    return ds


@pytest.fixture(scope="session")
def lev_cost() -> LevenshteinCost:
    return LevenshteinCost()


@pytest.fixture(scope="session")
def edr_cost(small_graph) -> EDRCost:
    return EDRCost(small_graph, epsilon=60.0)


@pytest.fixture(scope="session")
def erp_cost(small_graph) -> ERPCost:
    return ERPCost(small_graph, eta=25.0)


@pytest.fixture(scope="session")
def netedr_cost(small_graph) -> NetEDRCost:
    return NetEDRCost(small_graph)


@pytest.fixture(scope="session")
def neterp_cost(small_graph) -> NetERPCost:
    return NetERPCost(small_graph, g_del=250.0)


@pytest.fixture(scope="session")
def surs_cost(small_graph) -> SURSCost:
    return SURSCost(small_graph)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(12345)


def sample_query(dataset: TrajectoryDataset, rng: random.Random, length: int):
    """A random subtrajectory of a random (long-enough) trajectory."""
    eligible = [
        tid for tid in range(len(dataset)) if len(dataset.symbols(tid)) >= length
    ]
    tid = rng.choice(eligible)
    symbols = dataset.symbols(tid)
    s = rng.randrange(0, len(symbols) - length + 1)
    return list(symbols[s : s + length])
