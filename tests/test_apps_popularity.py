"""Path popularity counting."""

import pytest

from repro.apps.popularity import path_popularity
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import LevenshteinCost
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


@pytest.fixture()
def dataset(line_graph):
    ds = TrajectoryDataset(line_graph)
    ds.add(Trajectory([0, 1, 2, 3], timestamps=[0, 1, 2, 3]))
    ds.add(Trajectory([1, 2, 3, 4], timestamps=[0, 1, 2, 3]))
    ds.add(Trajectory([0, 1, 2, 1, 2, 3], timestamps=[0, 1, 2, 3, 4, 5]))
    ds.add(Trajectory([4, 3, 2], timestamps=[0, 1, 2]))
    return ds


class TestExactCounts:
    def test_occurrences_vs_trajectories(self, dataset):
        report = path_popularity(dataset, [1, 2])
        # [1,2] occurs in t0 once, t1 once, t2 twice.
        assert report.exact_occurrences == 4
        assert report.exact_trajectories == 3
        assert report.similar_trajectories is None

    def test_unseen_path(self, dataset):
        report = path_popularity(dataset, [2, 0])
        assert report.exact_occurrences == 0


class TestSimilarCounts:
    def test_similarity_counts_at_least_exact(self, dataset):
        engine = SubtrajectorySearch(dataset, LevenshteinCost())
        report = path_popularity(dataset, [1, 2, 3], engine=engine, tau_ratio=0.5)
        assert report.similar_trajectories is not None
        assert report.similar_trajectories >= report.exact_trajectories

    def test_similarity_finds_variants(self, dataset):
        engine = SubtrajectorySearch(dataset, LevenshteinCost())
        # [1,2,4] never occurs exactly but is 1 edit from [1,2,3].
        report = path_popularity(dataset, [1, 2, 4], engine=engine, tau_ratio=0.5)
        assert report.exact_occurrences == 0
        assert report.similar_trajectories >= 1
