"""Route suggestion and naturalness (§6.2.2)."""

import pytest

from repro.apps.route_suggestion import (
    distances_to_target,
    route_naturalness,
    suggest_routes,
)
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import LevenshteinCost
from repro.network.graph import RoadNetwork
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


@pytest.fixture()
def detour_graph():
    """0 -> 1 -> 2 (direct) and 0 -> 3 -> 2 (detour away from target)."""
    g = RoadNetwork()
    g.add_vertex((0, 0))  # 0
    g.add_vertex((1, 0))  # 1
    g.add_vertex((2, 0))  # 2 (target)
    g.add_vertex((0, 5))  # 3 (far detour)
    for a, b in [(0, 1), (1, 2), (0, 3), (3, 2), (1, 0), (2, 1), (3, 0), (2, 3)]:
        g.add_edge(a, b)
    return g


class TestDistancesToTarget:
    def test_matches_forward_dijkstra_on_reverse(self, small_graph):
        from repro.network.shortest_path import bidirectional_dijkstra

        target = 7
        dist = distances_to_target(small_graph, target)
        for u in (0, 5, 20, 40):
            assert dist[u] == pytest.approx(
                bidirectional_dijkstra(small_graph, u, target)
            )

    def test_target_distance_zero(self, small_graph):
        assert distances_to_target(small_graph, 3)[3] == 0.0


class TestNaturalness:
    def test_direct_route_is_fully_natural(self, detour_graph):
        assert route_naturalness(detour_graph, [0, 1, 2]) == 1.0

    def test_detour_route_less_natural(self, detour_graph):
        direct = route_naturalness(detour_graph, [0, 1, 2])
        detour = route_naturalness(detour_graph, [0, 3, 2])
        assert detour < direct

    def test_single_vertex_route(self, detour_graph):
        assert route_naturalness(detour_graph, [2]) == 1.0

    def test_precomputed_distances_agree(self, detour_graph):
        dist = distances_to_target(detour_graph, 2)
        assert route_naturalness(detour_graph, [0, 1, 2]) == route_naturalness(
            detour_graph, [0, 1, 2], dist_to_dest=dist
        )

    def test_shortest_paths_are_natural(self, small_graph):
        """Every hop of a shortest path gets strictly closer, so the
        naturalness of shortest paths is exactly 1."""
        from repro.network.shortest_path import shortest_path

        for (u, v) in [(0, 60), (5, 40), (12, 55)]:
            path = shortest_path(small_graph, u, v)
            if path and len(path) > 1:
                assert route_naturalness(small_graph, path) == 1.0

    def test_backtracking_route_scores_low(self, line_graph):
        # 0 -> 1 -> 2 -> 1 -> 2 -> 3: two of the five hops move away/repeat.
        n = route_naturalness(line_graph, [0, 1, 2, 1, 2, 3])
        assert n == pytest.approx(3 / 5)


class TestSuggestRoutes:
    @pytest.fixture()
    def corridor_dataset(self, detour_graph):
        ds = TrajectoryDataset(detour_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))  # direct
        ds.add(Trajectory([0, 3, 2], timestamps=[0, 1, 2]))  # detour
        ds.add(Trajectory([0, 1, 2], timestamps=[5, 6, 7]))  # duplicate route
        ds.add(Trajectory([1, 2, 3], timestamps=[0, 1, 2]))  # wrong endpoints
        return ds

    def test_endpoint_filtering_and_dedup(self, corridor_dataset, detour_graph):
        engine = SubtrajectorySearch(corridor_dataset, LevenshteinCost())
        routes = suggest_routes(
            engine, corridor_dataset, [0, 1, 2], tau=2.0
        )
        paths = [p for p, _ in routes]
        assert (0, 1, 2) in paths
        assert (0, 3, 2) in paths
        assert len(paths) == len(set(paths))  # deduplicated
        for p in paths:
            assert p[0] == 0 and p[-1] == 2

    def test_sorted_by_distance(self, corridor_dataset):
        engine = SubtrajectorySearch(corridor_dataset, LevenshteinCost())
        routes = suggest_routes(engine, corridor_dataset, [0, 1, 2], tau=2.0)
        dists = [m.distance for _, m in routes]
        assert dists == sorted(dists)
        assert dists[0] == 0.0  # the exact route itself

    def test_requires_vertex_representation(self, detour_graph):
        ds = TrajectoryDataset(detour_graph, "edge")
        ds.add(Trajectory([0, 1, 2]))
        engine = SubtrajectorySearch(ds, LevenshteinCost("edge"))
        with pytest.raises(ValueError):
            suggest_routes(engine, ds, [0, 1], tau=1.0)

    def test_wider_threshold_finds_more(self, corridor_dataset):
        engine = SubtrajectorySearch(corridor_dataset, LevenshteinCost())
        narrow = suggest_routes(engine, corridor_dataset, [0, 1, 2], tau=1.0)
        wide = suggest_routes(engine, corridor_dataset, [0, 1, 2], tau=2.5)
        assert len(narrow) <= len(wide)
