"""Travel-time estimation: retrieval, LOOCV math, top-k modes."""

import math

import pytest

from repro.apps._common import (
    best_match_per_trajectory,
    find_exact_occurrences,
    match_travel_time,
)
from repro.apps.travel_time import TravelTimeEstimator, _loo_mse, relative_mse
from repro.core.engine import SubtrajectorySearch
from repro.core.results import Match
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


@pytest.fixture()
def straight_dataset(line_graph):
    """Five trajectories traveling the same corridor with known times."""
    ds = TrajectoryDataset(line_graph)
    for k, speed in enumerate([10.0, 11.0, 12.0, 9.0, 10.5]):
        ts = [speed * i for i in range(5)]
        ds.add(Trajectory([0, 1, 2, 3, 4], timestamps=ts))
    return ds


class TestCommonHelpers:
    def test_find_exact_occurrences_scan(self, straight_dataset):
        hits = find_exact_occurrences(straight_dataset, [1, 2, 3])
        assert hits == [(tid, 1, 3) for tid in range(5)]

    def test_find_exact_occurrences_with_index(self, straight_dataset):
        from repro.core.invindex import InvertedIndex

        index = InvertedIndex(straight_dataset)
        assert find_exact_occurrences(straight_dataset, [1, 2, 3], index) == [
            (tid, 1, 3) for tid in range(5)
        ]

    def test_find_exact_no_hits(self, straight_dataset):
        assert find_exact_occurrences(straight_dataset, [4, 3]) == []

    def test_best_match_per_trajectory_prefers_distance_then_length(self):
        ms = [
            Match(0, 0, 5, 2.0),
            Match(0, 1, 3, 1.0),
            Match(0, 2, 6, 1.0),  # same distance, longer
            Match(1, 0, 1, 3.0),
        ]
        best = best_match_per_trajectory(ms)
        assert best[0] == Match(0, 1, 3, 1.0)
        assert best[1] == Match(1, 0, 1, 3.0)

    def test_match_travel_time_vertex_and_edge(self, line_graph):
        vds = TrajectoryDataset(line_graph, "vertex")
        vds.add(Trajectory([0, 1, 2], timestamps=[0.0, 4.0, 9.0]))
        assert match_travel_time(vds, 0, 0, 2) == 9.0
        eds = TrajectoryDataset(line_graph, "edge")
        eds.add(Trajectory([0, 1, 2], timestamps=[0.0, 4.0, 9.0]))
        # Edge symbol 0 spans vertices 0..1, edge symbol 1 spans 1..2.
        assert match_travel_time(eds, 0, 0, 0) == 4.0
        assert match_travel_time(eds, 0, 0, 1) == 9.0


class TestLooMse:
    def test_removes_one_instance(self):
        truths = [10.0, 12.0]
        # For 10: pool minus 10 -> avg 12, err 4; for 12: avg 10, err 4.
        assert _loo_mse(truths, truths) == pytest.approx(4.0)

    def test_pool_without_truth_keeps_everything(self):
        assert _loo_mse([10.0], [20.0, 30.0]) == pytest.approx((10.0 - 25.0) ** 2)

    def test_undefined_cases(self):
        assert _loo_mse([], [1.0]) is None
        assert _loo_mse([1.0], []) is None
        assert _loo_mse([5.0], [5.0]) is None  # removing leaves empty pool


class TestEstimator:
    def test_engine_xor_function(self, straight_dataset, lev_cost):
        engine = SubtrajectorySearch(straight_dataset, lev_cost)
        with pytest.raises(QueryError):
            TravelTimeEstimator(straight_dataset)
        with pytest.raises(QueryError):
            TravelTimeEstimator(straight_dataset, engine=engine, function="dtw")
        with pytest.raises(QueryError):
            TravelTimeEstimator(straight_dataset, function="nope")

    def test_ground_truths(self, straight_dataset, lev_cost):
        engine = SubtrajectorySearch(straight_dataset, lev_cost)
        est = TravelTimeEstimator(straight_dataset, engine=engine)
        truths = est.ground_truths([1, 2, 3])
        # Travel time vertex 1 -> 3 is 2 * speed.
        assert sorted(truths) == pytest.approx([18.0, 20.0, 21.0, 22.0, 24.0])

    def test_estimate_on_exact_corridor(self, straight_dataset, lev_cost):
        engine = SubtrajectorySearch(straight_dataset, lev_cost)
        est = TravelTimeEstimator(straight_dataset, engine=engine)
        value = est.estimate([1, 2, 3], tau_ratio=0.3)
        assert value == pytest.approx(sum([20, 22, 24, 18, 21]) / 5)

    def test_estimate_nan_when_nothing_qualifies(self, straight_dataset, lev_cost):
        engine = SubtrajectorySearch(straight_dataset, lev_cost)
        est = TravelTimeEstimator(straight_dataset, engine=engine)
        assert math.isnan(est.estimate([5, 5, 5], tau_ratio=0.3))

    def test_similar_times_one_per_trajectory(self, straight_dataset, lev_cost):
        engine = SubtrajectorySearch(straight_dataset, lev_cost)
        est = TravelTimeEstimator(straight_dataset, engine=engine)
        times = est.similar_times([1, 2, 3], tau_ratio=0.3)
        assert len(times) == 5


class TestNonWEDEstimators:
    def test_dtw_retrieves_corridor(self, straight_dataset):
        est = TravelTimeEstimator(straight_dataset, function="dtw")
        times = est.similar_times([1, 2, 3], tau_ratio=0.1)
        assert len(times) == 5  # exact corridor: DTW cost 0

    def test_lcss_retrieves_corridor(self, straight_dataset):
        est = TravelTimeEstimator(straight_dataset, function="lcss")
        assert len(est.similar_times([1, 2, 3], tau_ratio=0.1)) == 5

    def test_lors_requires_edge_representation(self, straight_dataset):
        est = TravelTimeEstimator(straight_dataset, function="lors")
        with pytest.raises(QueryError):
            est.similar_times([1, 2], tau_ratio=0.1)

    def test_lors_and_lcrs_on_edges(self, line_graph):
        ds = TrajectoryDataset(line_graph, "edge")
        for speed in (10.0, 12.0):
            ds.add(Trajectory([0, 1, 2, 3], timestamps=[0, speed, 2 * speed, 3 * speed]))
        e01 = line_graph.edge_id(1, 2)
        for kind in ("lors", "lcrs"):
            est = TravelTimeEstimator(ds, function=kind)
            times = est.similar_times([e01], tau_ratio=0.2)
            assert len(times) == 2


class TestTopK:
    def test_whole_matching_overestimates(self, line_graph, lev_cost):
        """Whole trajectories are longer than the query span, so whole-match
        times exceed subtrajectory times (the Table 3 effect)."""
        ds = TrajectoryDataset(line_graph)
        for speed in (10.0, 11.0, 12.0):
            ds.add(Trajectory([0, 1, 2, 3, 4, 5], timestamps=[speed * i for i in range(6)]))
        engine = SubtrajectorySearch(ds, lev_cost)
        est = TravelTimeEstimator(ds, engine=engine)
        sub = est.topk_times([1, 2, 3], 3, mode="subtrajectory")
        whole = est.topk_times([1, 2, 3], 3, mode="whole")
        assert sum(whole) > sum(sub)

    def test_requires_engine(self, straight_dataset):
        est = TravelTimeEstimator(straight_dataset, function="dtw")
        with pytest.raises(QueryError):
            est.topk_times([1, 2], 3, mode="whole")


class TestRelativeMse:
    def test_similarity_helps_on_noisy_corridor(self, line_graph, lev_cost):
        """With a noisy corridor and a slight detour variant, similarity
        search sees more samples and gets a lower LOO error."""
        import random

        rng = random.Random(1)
        g = line_graph
        ds = TrajectoryDataset(g)
        # Two exact travelers with noisy times.
        for _ in range(2):
            t0 = 10.0 + rng.uniform(-1, 1)
            ds.add(Trajectory([0, 1, 2, 3], timestamps=[0.0, t0, 2 * t0, 3 * t0]))
        # Many near-identical travelers on the same corridor but one vertex
        # longer (similar under tau, not exact).
        for _ in range(10):
            t0 = 10.0 + rng.uniform(-0.2, 0.2)
            ds.add(
                Trajectory([0, 1, 2, 3, 4], timestamps=[0.0, t0, 2 * t0, 3 * t0, 4 * t0])
            )
        engine = SubtrajectorySearch(ds, lev_cost)
        est = TravelTimeEstimator(ds, engine=engine)
        rmse = relative_mse(est, [[0, 1, 2, 3]], tau_ratio=0.3)
        assert not math.isnan(rmse)

    def test_nan_when_no_scorable_queries(self, straight_dataset, lev_cost):
        engine = SubtrajectorySearch(straight_dataset, lev_cost)
        est = TravelTimeEstimator(straight_dataset, engine=engine)
        assert math.isnan(relative_mse(est, [[5, 5]], tau_ratio=0.1))
