"""All baselines return the exact Definition 3 result set, and their
candidate counts order as the paper reports (Fig. 11)."""

import pytest

from repro.baselines import (
    DITAIndex,
    ERPIndex,
    PlainSWScan,
    QGramIndex,
    dison_engine,
    torch_engine,
)
from repro.core.engine import SubtrajectorySearch
from repro.distance.smith_waterman import all_matches
from repro.distance.wed import wed
from repro.exceptions import IndexError_, QueryError
from repro.trajectory.dataset import TrajectoryDataset
from tests.conftest import sample_query


def keys(matches):
    return {(m.trajectory_id, m.start, m.end) for m in matches}


def oracle(dataset, query, costs, tau):
    out = set()
    for tid in range(len(dataset)):
        for s, t, _ in all_matches(dataset.symbols(tid), query, costs, tau):
            out.add((tid, s, t))
    return out


@pytest.fixture(scope="module")
def workload(vertex_dataset):
    import random

    rng = random.Random(99)
    return [sample_query(vertex_dataset, rng, 6) for _ in range(3)]


class TestAdaptedEngines:
    @pytest.mark.parametrize("factory", [dison_engine, torch_engine])
    @pytest.mark.parametrize("verification", ["trie", "sw"])
    def test_exact_results(
        self, factory, verification, vertex_dataset, edr_cost, workload
    ):
        engine = factory(vertex_dataset, edr_cost, verification=verification)
        for query in workload:
            result = engine.query(query, tau_ratio=0.25)
            assert keys(result.matches) == oracle(
                vertex_dataset, query, edr_cost, result.tau
            )

    def test_candidate_ordering_osf_dison_torch(
        self, vertex_dataset, edr_cost, workload
    ):
        """OSF <= DISON <= Torch in candidate count (Fig. 11 shape)."""
        osf = SubtrajectorySearch(vertex_dataset, edr_cost)
        dison = dison_engine(vertex_dataset, edr_cost)
        torch = torch_engine(vertex_dataset, edr_cost)
        for query in workload:
            tau = osf.query(query, tau_ratio=0.25).tau
            n_osf = len(osf.candidates(query, tau=tau))
            n_dison = len(dison.candidates(query, tau=tau))
            n_torch = len(torch.candidates(query, tau=tau))
            assert n_osf <= n_dison <= n_torch


class TestPlainSW:
    def test_all_semantics_exact(self, vertex_dataset, edr_cost, workload):
        scan = PlainSWScan(vertex_dataset, edr_cost)
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        for query in workload:
            tau = engine.query(query, tau_ratio=0.25).tau
            assert keys(scan.query(query, tau)) == oracle(
                vertex_dataset, query, edr_cost, tau
            )

    def test_best_semantics_one_per_trajectory(self, vertex_dataset, edr_cost, workload):
        scan = PlainSWScan(vertex_dataset, edr_cost, semantics="best")
        for query in workload:
            got = scan.query(query, 2.0)
            ids = [m.trajectory_id for m in got]
            assert len(ids) == len(set(ids))
            for m in got:
                sub = vertex_dataset.symbols(m.trajectory_id)[m.start : m.end + 1]
                assert wed(sub, query, edr_cost) == m.distance < 2.0

    def test_best_is_subset_of_all(self, vertex_dataset, edr_cost, workload):
        best = PlainSWScan(vertex_dataset, edr_cost, semantics="best")
        full = PlainSWScan(vertex_dataset, edr_cost, semantics="all")
        for query in workload:
            assert keys(best.query(query, 2.0)) <= keys(full.query(query, 2.0))

    def test_unknown_semantics_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(ValueError):
            PlainSWScan(vertex_dataset, edr_cost, semantics="nope")

    def test_temporal_postfilter(self, vertex_dataset, edr_cost, workload):
        from repro.core.temporal import TimeInterval, match_satisfies

        scan = PlainSWScan(vertex_dataset, edr_cost)
        times = sorted(vertex_dataset[t].start_time for t in range(len(vertex_dataset)))
        interval = TimeInterval(times[0], times[len(times) // 3])
        query = workload[0]
        got = scan.query(query, 2.0, time_interval=interval)
        assert keys(got) <= keys(scan.query(query, 2.0))
        for m in got:
            assert match_satisfies(vertex_dataset, m, interval, "overlap")


class TestQGram:
    def test_exact_results_edr(self, vertex_dataset, edr_cost, workload):
        index = QGramIndex(vertex_dataset, edr_cost)
        for query in workload:
            tau = 1.5
            assert keys(index.query(query, tau)) == oracle(
                vertex_dataset, query, edr_cost, tau
            )

    def test_exact_results_lev(self, vertex_dataset, lev_cost, workload):
        index = QGramIndex(vertex_dataset, lev_cost)
        for query in workload:
            assert keys(index.query(query, 2.0)) == oracle(
                vertex_dataset, query, lev_cost, 2.0
            )

    def test_candidates_superset_of_matching_ids(
        self, vertex_dataset, edr_cost, workload
    ):
        index = QGramIndex(vertex_dataset, edr_cost)
        for query in workload:
            want_ids = {tid for tid, _, _ in oracle(vertex_dataset, query, edr_cost, 1.5)}
            assert want_ids <= set(index.candidates(query, 1.5))

    def test_large_tau_degenerates_to_scan(self, vertex_dataset, edr_cost):
        index = QGramIndex(vertex_dataset, edr_cost)
        query = list(vertex_dataset.symbols(0))[:5]
        # tau so large the count bound is <= 0: every id is a candidate.
        assert len(index.candidates(query, 10.0)) == len(vertex_dataset)

    def test_short_query_scans(self, vertex_dataset, edr_cost):
        index = QGramIndex(vertex_dataset, edr_cost)
        assert len(index.candidates([0, 1], 0.5)) == len(vertex_dataset)

    def test_non_unit_model_rejected(self, vertex_dataset, erp_cost):
        with pytest.raises(QueryError):
            QGramIndex(vertex_dataset, erp_cost)

    def test_bad_q_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            QGramIndex(vertex_dataset, edr_cost, q=0)


class TestDITA:
    @pytest.fixture(scope="class")
    def tiny(self, small_graph):
        from repro.trajectory.generator import TripGenerator

        ds = TrajectoryDataset(small_graph)
        ds.extend(TripGenerator(small_graph, seed=3).generate(12, min_length=5, max_length=18))
        return ds

    def test_exact_results(self, tiny, edr_cost):
        import random

        index = DITAIndex(tiny, edr_cost)
        rng = random.Random(5)
        for _ in range(3):
            query = sample_query(tiny, rng, 5)
            assert keys(index.query(query, 1.5)) == oracle(tiny, query, edr_cost, 1.5)

    def test_exact_results_erp(self, tiny, erp_cost):
        import random

        index = DITAIndex(tiny, erp_cost)
        rng = random.Random(6)
        query = sample_query(tiny, rng, 5)
        tau = 0.15 * sum(erp_cost.ins(q) for q in query)
        assert keys(index.query(query, tau)) == oracle(tiny, query, erp_cost, tau)

    def test_candidates_prune_something(self, tiny, edr_cost):
        import random

        index = DITAIndex(tiny, edr_cost)
        rng = random.Random(7)
        query = sample_query(tiny, rng, 6)
        cands = index.candidates(query, 1.0)
        assert len(cands) < index.num_subtrajectories

    def test_enumeration_limit(self, vertex_dataset, edr_cost):
        with pytest.raises(IndexError_):
            DITAIndex(vertex_dataset, edr_cost, max_subtrajectories=10)

    def test_pivot_strategies(self, tiny, edr_cost, erp_cost):
        assert DITAIndex(tiny, edr_cost)._strategy == "frequent"
        assert DITAIndex(tiny, erp_cost)._strategy == "costly"
        with pytest.raises(IndexError_):
            DITAIndex(tiny, edr_cost, pivot_strategy="nope")

    def test_memory_reported(self, tiny, edr_cost):
        assert DITAIndex(tiny, edr_cost).memory_bytes() > 0


class TestERPIndexBaseline:
    @pytest.fixture(scope="class")
    def tiny(self, small_graph):
        from repro.trajectory.generator import TripGenerator

        ds = TrajectoryDataset(small_graph)
        ds.extend(TripGenerator(small_graph, seed=4).generate(12, min_length=5, max_length=18))
        return ds

    def test_exact_results(self, tiny, erp_cost):
        import random

        index = ERPIndex(tiny, erp_cost)
        rng = random.Random(8)
        for _ in range(3):
            query = sample_query(tiny, rng, 5)
            tau = 0.15 * sum(erp_cost.ins(q) for q in query)
            assert keys(index.query(query, tau)) == oracle(tiny, query, erp_cost, tau)

    def test_lower_bound_is_valid(self, tiny, erp_cost):
        """No subtrajectory outside the kd-tree radius can match."""
        import random

        index = ERPIndex(tiny, erp_cost)
        rng = random.Random(9)
        query = sample_query(tiny, rng, 5)
        tau = 0.2 * sum(erp_cost.ins(q) for q in query)
        cands = set(index.candidates(query, tau))
        assert oracle(tiny, query, erp_cost, tau) <= cands

    def test_requires_erp_model(self, tiny, edr_cost):
        with pytest.raises(IndexError_):
            ERPIndex(tiny, edr_cost)

    def test_enumeration_limit(self, vertex_dataset, erp_cost):
        with pytest.raises(IndexError_):
            ERPIndex(vertex_dataset, erp_cost, max_subtrajectories=10)

    def test_counts(self, tiny, erp_cost):
        index = ERPIndex(tiny, erp_cost)
        want = sum(
            len(tiny.symbols(t)) * (len(tiny.symbols(t)) + 1) // 2
            for t in range(len(tiny))
        )
        assert index.num_subtrajectories == want
        assert index.memory_bytes() > 0


class TestSURSWithBaselines:
    def test_plain_sw_edge_representation(self, edge_dataset, surs_cost):
        import random

        rng = random.Random(11)
        scan = PlainSWScan(edge_dataset, surs_cost)
        engine = SubtrajectorySearch(edge_dataset, surs_cost)
        query = sample_query(edge_dataset, rng, 5)
        tau = engine.query(query, tau_ratio=0.2).tau
        assert keys(scan.query(query, tau)) == oracle(edge_dataset, query, surs_cost, tau)
