"""Corridor workload builder (effectiveness-experiment substrate)."""

import pytest

from repro.apps._common import find_exact_occurrences
from repro.bench.corridors import build_corridor_workload


@pytest.fixture(scope="module")
def workload():
    return build_corridor_workload(
        num_corridors=4,
        exact_travelers=3,
        variant_travelers=8,
        background_trips=20,
        corridor_length=(10, 14),
        seed=5,
    )


class TestStructure:
    def test_counts(self, workload):
        assert len(workload.corridors) == 4
        assert len(workload.dataset) == 4 * (3 + 8) + 20

    def test_corridor_lengths(self, workload):
        for c in workload.corridors:
            assert 10 <= len(c) <= 14

    def test_corridors_are_paths(self, workload):
        for c in workload.corridors:
            assert workload.graph.is_path(c)

    def test_trips_are_paths_with_timestamps(self, workload):
        for t in workload.dataset:
            assert workload.graph.is_path(list(t.path))
            assert t.timestamps is not None

    def test_exact_travelers_contain_corridor(self, workload):
        for c in workload.corridors:
            hits = find_exact_occurrences(workload.dataset, c)
            assert len(hits) >= 3  # at least the exact travelers

    def test_variants_share_endpoints(self, workload):
        """Variant travelers pass through the corridor's endpoints."""
        for c in workload.corridors:
            u, v = c[0], c[-1]
            through_both = sum(
                1
                for t in workload.dataset
                if u in t.path and v in t.path
            )
            assert through_both >= 3 + 8  # exact + variant travelers

    def test_deterministic(self):
        a = build_corridor_workload(num_corridors=2, background_trips=5, seed=9)
        b = build_corridor_workload(num_corridors=2, background_trips=5, seed=9)
        assert a.corridors == b.corridors
        assert [t.path for t in a.dataset] == [t.path for t in b.dataset]

    def test_edge_representation(self):
        w = build_corridor_workload(
            num_corridors=2, background_trips=5, seed=9, representation="edge"
        )
        assert w.dataset.representation == "edge"

    def test_impossible_corridors_rejected(self, small_graph):
        with pytest.raises(ValueError):
            build_corridor_workload(
                graph=small_graph, corridor_length=(500, 600), seed=1
            )


class TestSparseSimilarStructure:
    def test_similarity_search_finds_more_than_exact(self, workload):
        """The workload's purpose: similar >> exact matches per corridor."""
        from repro.core.engine import SubtrajectorySearch
        from repro.distance.costs import LevenshteinCost
        from repro.apps._common import best_match_per_trajectory

        engine = SubtrajectorySearch(workload.dataset, LevenshteinCost())
        found_extra = 0
        for c in workload.corridors:
            exact = {tid for tid, _, _ in find_exact_occurrences(workload.dataset, c)}
            matches = engine.query(c, tau_ratio=0.25).matches
            similar = set(best_match_per_trajectory(matches))
            assert exact <= similar
            if len(similar) > len(exact):
                found_extra += 1
        assert found_extra >= 2  # most corridors gain similar travelers
