"""Markdown report generation from recorded experiment results."""

import json

import pytest

from repro.bench.report import load_results, render_markdown


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "fig06_beijing_EDR.json").write_text(
        json.dumps(
            {
                "experiment": "fig06_beijing_EDR",
                "expectation": "OSF-BT fastest",
                "scale": 0.25,
                "tau_ratios": [0.1, 0.2],
                "seconds": {"OSF-BT": [0.001, 0.002], "Plain-SW": [0.04, 0.05]},
            }
        )
    )
    (tmp_path / "table2_datasets.json").write_text(
        json.dumps(
            {
                "experiment": "table2_datasets",
                "expectation": "orderings preserved",
                "measured": {"beijing": {"num_trajectories": 500}},
            }
        )
    )
    return tmp_path


class TestLoadResults:
    def test_paper_order(self, results_dir):
        records = load_results(results_dir)
        names = [r["experiment"] for r in records]
        assert names == ["table2_datasets", "fig06_beijing_EDR"]

    def test_corrupt_record_rejected(self, results_dir):
        (results_dir / "bad.json").write_text("{nope")
        with pytest.raises(ValueError):
            load_results(results_dir)


class TestRenderMarkdown:
    def test_contains_experiments_and_series(self, results_dir):
        md = render_markdown(results_dir)
        assert "## fig06_beijing_EDR" in md
        assert "OSF-BT" in md
        assert "*Expected (paper):* OSF-BT fastest" in md
        assert "*Dataset scale:* 0.25" in md

    def test_runs_on_real_results(self):
        from pathlib import Path

        real = Path(__file__).resolve().parents[1] / "results"
        if not real.is_dir():
            pytest.skip("no recorded results yet")
        records = list(real.glob("*.json"))
        if not records:
            pytest.skip("no recorded results yet")
        md = render_markdown(real)
        assert "Recorded experiment results" in md
        # One section per record — however many benchmarks have run so far
        # (a single bench invocation leaves exactly one record behind).
        assert md.count("\n## ") >= len(records)
