"""Bench support: dataset profiles, workloads, harness."""

import json

import pytest

from repro.bench.datasets import DATASET_PROFILES, build_dataset
from repro.bench.harness import ResultRecorder, SeriesTable, format_seconds
from repro.bench.workloads import sample_queries, sample_sparse_queries


class TestProfiles:
    def test_all_profiles_build(self):
        for name in DATASET_PROFILES:
            graph, ds = build_dataset(name, scale=0.02)
            assert len(ds) >= 1
            assert graph.num_vertices > 0

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            build_dataset("atlantis")

    def test_memoization(self):
        a = build_dataset("tiny")
        b = build_dataset("tiny")
        assert a is b

    def test_scale_changes_count(self):
        _, full = build_dataset("tiny", scale=1.0)
        _, half = build_dataset("tiny", scale=0.5)
        assert len(half) == max(1, int(len(full) * 0.5))

    def test_relative_shape_preserved(self):
        """porto > beijing > singapore in count; singapore longest trips."""
        p = DATASET_PROFILES
        assert p["porto"].num_trajectories > p["beijing"].num_trajectories
        assert p["beijing"].num_trajectories > p["singapore"].num_trajectories
        assert p["sanfran"].num_trajectories > p["porto"].num_trajectories
        assert p["singapore"].min_length > p["beijing"].min_length

    def test_edge_representation_supported(self):
        _, ds = build_dataset("tiny", representation="edge")
        assert ds.representation == "edge"

    def test_timestamps_present(self):
        _, ds = build_dataset("tiny")
        assert ds[0].timestamps is not None


class TestWorkloads:
    def test_sample_queries_length(self):
        _, ds = build_dataset("tiny")
        queries = sample_queries(ds, 5, 6, seed=1)
        assert len(queries) == 5
        assert all(len(q) == 6 for q in queries)

    def test_queries_are_substrings(self):
        _, ds = build_dataset("tiny")
        for q in sample_queries(ds, 5, 6, seed=2):
            found = False
            for tid in range(len(ds)):
                s = list(ds.symbols(tid))
                for i in range(len(s) - len(q) + 1):
                    if s[i : i + len(q)] == q:
                        found = True
            assert found

    def test_deterministic(self):
        _, ds = build_dataset("tiny")
        assert sample_queries(ds, 4, 5, seed=3) == sample_queries(ds, 4, 5, seed=3)

    def test_too_long_rejected(self):
        _, ds = build_dataset("tiny")
        with pytest.raises(ValueError):
            sample_queries(ds, 1, 10_000)

    def test_sparse_queries_have_bounded_exact_matches(self):
        from repro.apps._common import find_exact_occurrences

        _, ds = build_dataset("tiny")
        queries = sample_sparse_queries(ds, 3, 5, min_exact=2, max_exact=10, seed=4)
        for q in queries:
            hits = find_exact_occurrences(ds, q)
            assert 2 <= len(hits) <= 10


class TestHarness:
    def test_series_table_renders(self):
        t = SeriesTable("method", ["0.1", "0.2"], title="demo")
        t.add_row("OSF-BT", [0.01, 0.002], formatter=format_seconds)
        out = t.render()
        assert "OSF-BT" in out and "10.0ms" in out and "demo" in out

    def test_row_length_checked(self):
        t = SeriesTable("m", ["a"])
        with pytest.raises(ValueError):
            t.add_row("x", [1, 2])

    def test_raw_values_kept(self):
        t = SeriesTable("m", ["a", "b"])
        t.add_row("x", [1, 2])
        assert t.raw["x"] == [1, 2]

    def test_format_seconds_scales(self):
        assert format_seconds(2e-6).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(2.5).endswith("s")

    def test_recorder_writes_json(self, tmp_path):
        rec = ResultRecorder(root=tmp_path)
        path = rec.record("exp1", {"series": [1, 2]}, expectation="goes up")
        data = json.loads(path.read_text())
        assert data["experiment"] == "exp1"
        assert data["expectation"] == "goes up"
        assert data["series"] == [1, 2]
