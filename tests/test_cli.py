"""CLI: end-to-end workflows through ``python -m repro``."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def workspace(tmp_path):
    net = tmp_path / "net.txt"
    trips = tmp_path / "trips.jsonl"
    assert main(
        [
            "generate-network",
            "--style",
            "grid",
            "--rows",
            "8",
            "--cols",
            "8",
            "--seed",
            "3",
            "--out",
            str(net),
        ]
    ) == 0
    assert main(
        [
            "generate-trips",
            "--network",
            str(net),
            "--count",
            "40",
            "--min-length",
            "6",
            "--max-length",
            "25",
            "--seed",
            "4",
            "--out",
            str(trips),
        ]
    ) == 0
    return net, trips


class TestGenerate:
    def test_network_file_loadable(self, workspace):
        from repro.network.io import load_network

        net, _ = workspace
        graph = load_network(net)
        assert graph.num_vertices == 64

    def test_trips_file_loadable(self, workspace):
        from repro.network.io import load_network
        from repro.trajectory.dataset import TrajectoryDataset

        net, trips = workspace
        ds = TrajectoryDataset.load(load_network(net), trips)
        assert len(ds) == 40

    def test_radial_and_random_styles(self, tmp_path):
        for style in ("radial", "random"):
            out = tmp_path / f"{style}.txt"
            assert main(
                ["generate-network", "--style", style, "--rows", "4",
                 "--cols", "8", "--out", str(out)]
            ) == 0


class TestStats:
    def test_stats_json(self, workspace, capsys):
        net, trips = workspace
        assert main(["stats", "--network", str(net), "--trips", str(trips)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["num_trajectories"] == 40
        assert out["num_vertices"] == 64


class TestQuery:
    def _query_of(self, workspace, length=5):
        from repro.network.io import load_network
        from repro.trajectory.dataset import TrajectoryDataset

        net, trips = workspace
        ds = TrajectoryDataset.load(load_network(net), trips)
        tid = max(range(len(ds)), key=lambda t: len(ds.symbols(t)))
        return ",".join(str(v) for v in list(ds.symbols(tid))[:length])

    def test_query_finds_source_trajectory(self, workspace, capsys):
        net, trips = workspace
        query = self._query_of(workspace)
        assert main(
            [
                "query",
                "--network",
                str(net),
                "--trips",
                str(trips),
                "--query",
                query,
                "--tau-ratio",
                "0.2",
                "--function",
                "edr",
                "--epsilon",
                "60",
            ]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["total_matches"] >= 1
        assert out["candidates"] >= 1

    def test_query_with_explicit_tau(self, workspace, capsys):
        net, trips = workspace
        query = self._query_of(workspace)
        assert main(
            ["query", "--network", str(net), "--trips", str(trips),
             "--query", query, "--tau", "1.5", "--function", "lev"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["tau"] == 1.5

    def test_surs_requires_edge_representation(self, workspace):
        net, trips = workspace
        query = self._query_of(workspace)
        with pytest.raises(SystemExit):
            main(
                ["query", "--network", str(net), "--trips", str(trips),
                 "--query", query, "--function", "surs"]
            )

    def test_temporal_flags_must_pair(self, workspace):
        net, trips = workspace
        query = self._query_of(workspace)
        with pytest.raises(SystemExit):
            main(
                ["query", "--network", str(net), "--trips", str(trips),
                 "--query", query, "--time-from", "0"]
            )

    def test_bad_query_string(self, workspace):
        net, trips = workspace
        with pytest.raises(SystemExit):
            main(
                ["query", "--network", str(net), "--trips", str(trips),
                 "--query", "1,banana"]
            )


class TestTravelTime:
    def test_estimate(self, workspace, capsys):
        net, trips = workspace
        query = TestQuery()._query_of(workspace, length=4)
        assert main(
            ["travel-time", "--network", str(net), "--trips", str(trips),
             "--query", query, "--function", "lev", "--tau-ratio", "0.3"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["exact_occurrences"] >= 1
        assert out["estimate"] is not None
