"""The search engine vs the exhaustive oracle — the central correctness test.

Every configuration (cost model x selector x verification mode) must return
exactly the Definition 3 result set.
"""

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import ERPCost
from repro.distance.smith_waterman import all_matches
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory
from tests.conftest import sample_query

ALL_MODELS = ["lev_cost", "edr_cost", "erp_cost", "netedr_cost", "neterp_cost", "surs_cost"]


def oracle(dataset, query, costs, tau):
    want = set()
    for tid in range(len(dataset)):
        for s, t, _ in all_matches(dataset.symbols(tid), query, costs, tau):
            want.add((tid, s, t))
    return want


def result_keys(result):
    return {(m.trajectory_id, m.start, m.end) for m in result.matches}


class TestAgainstOracle:
    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_default_engine(
        self, model_name, request, vertex_dataset, edge_dataset, rng
    ):
        costs = request.getfixturevalue(model_name)
        dataset = edge_dataset if costs.representation == "edge" else vertex_dataset
        engine = SubtrajectorySearch(dataset, costs)
        for _ in range(4):
            query = sample_query(dataset, rng, 6)
            result = engine.query(query, tau_ratio=0.25)
            assert result_keys(result) == oracle(dataset, query, costs, result.tau)

    @pytest.mark.parametrize("selector", ["greedy", "exact", "prefix", "all"])
    def test_all_selectors(self, selector, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost, selector=selector)
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 5)
            result = engine.query(query, tau_ratio=0.3)
            assert result_keys(result) == oracle(
                vertex_dataset, query, edr_cost, result.tau
            )

    @pytest.mark.parametrize("verification", ["trie", "local", "sw"])
    def test_all_verifiers(self, verification, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(
            vertex_dataset, edr_cost, verification=verification
        )
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 5)
            result = engine.query(query, tau_ratio=0.3)
            assert result_keys(result) == oracle(
                vertex_dataset, query, edr_cost, result.tau
            )

    def test_distances_are_exact(self, vertex_dataset, edr_cost, rng):
        from repro.distance.wed import wed

        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        result = engine.query(query, tau_ratio=0.3)
        for m in result.matches:
            sub = vertex_dataset.symbols(m.trajectory_id)[m.start : m.end + 1]
            assert m.distance == pytest.approx(wed(sub, query, edr_cost))

    def test_no_early_termination_same_results(self, vertex_dataset, edr_cost, rng):
        a = SubtrajectorySearch(vertex_dataset, edr_cost, early_termination=True)
        b = SubtrajectorySearch(vertex_dataset, edr_cost, early_termination=False)
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 6)
            ra = a.query(query, tau_ratio=0.25)
            rb = b.query(query, tau_ratio=0.25)
            assert result_keys(ra) == result_keys(rb)


class TestValidation:
    def test_representation_mismatch_rejected(self, edge_dataset, edr_cost):
        with pytest.raises(QueryError):
            SubtrajectorySearch(edge_dataset, edr_cost)

    def test_unknown_selector_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            SubtrajectorySearch(vertex_dataset, edr_cost, selector="magic")

    def test_unknown_verification_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            SubtrajectorySearch(vertex_dataset, edr_cost, verification="magic")

    def test_empty_query_rejected(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        with pytest.raises(QueryError):
            engine.query([], tau=1.0)

    def test_tau_xor_ratio(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        with pytest.raises(QueryError):
            engine.query([1, 2], tau=1.0, tau_ratio=0.1)
        with pytest.raises(QueryError):
            engine.query([1, 2])

    def test_degenerate_query_rejected(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        # tau above the total insertion cost: empty string would match.
        with pytest.raises(QueryError):
            engine.query([1, 2], tau=5.0)

    def test_non_positive_tau_returns_empty(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        result = engine.query([1, 2, 3], tau=0.0)
        assert result.matches == []
        assert result.num_candidates == 0


class TestResultObject:
    def test_timings_populated(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 5)
        r = engine.query(query, tau_ratio=0.2)
        assert r.mincand_seconds >= 0
        assert r.lookup_seconds >= 0
        assert r.verify_seconds >= 0
        assert r.total_seconds == pytest.approx(
            r.mincand_seconds + r.lookup_seconds + r.verify_seconds
        )

    def test_subsequence_reaches_tau(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        r = engine.query(query, tau_ratio=0.3)
        assert sum(e.cost for e in r.subsequence) >= r.tau - 1e-9

    def test_len_is_match_count(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 5)
        r = engine.query(query, tau_ratio=0.2)
        assert len(r) == len(r.matches)

    def test_matches_sorted_deterministically(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 5)
        a = engine.query(query, tau_ratio=0.3).matches
        b = engine.query(query, tau_ratio=0.3).matches
        assert a == b
        keys = [(m.trajectory_id, m.start, m.end) for m in a]
        assert keys == sorted(keys)


class TestCandidateAPI:
    def test_candidates_cover_all_matches(self, vertex_dataset, edr_cost, rng):
        """Lemma 1: every match trajectory appears among the candidates."""
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        result = engine.query(query, tau_ratio=0.25)
        cands = engine.candidates(query, tau=result.tau)
        cand_ids = {tid for tid, _, _ in cands}
        for m in result.matches:
            assert m.trajectory_id in cand_ids
        # Moreover, some anchor must sit inside each matched span.
        spans = {}
        for tid, j, _ in cands:
            spans.setdefault(tid, []).append(j)
        for m in result.matches:
            assert any(m.start <= j <= m.end for j in spans[m.trajectory_id])

    def test_greedy_candidates_never_more_than_all(self, vertex_dataset, edr_cost, rng):
        greedy = SubtrajectorySearch(vertex_dataset, edr_cost, selector="greedy")
        every = SubtrajectorySearch(vertex_dataset, edr_cost, selector="all")
        query = sample_query(vertex_dataset, rng, 6)
        tau = greedy.query(query, tau_ratio=0.2).tau
        assert len(greedy.candidates(query, tau=tau)) <= len(
            every.candidates(query, tau=tau)
        )


class TestFallback:
    def test_scan_fallback_when_no_subsequence(self, small_graph):
        """ERP with tiny eta can make c(Q) < tau; the engine must fall back
        to an exact scan rather than miss results."""
        ds = TrajectoryDataset(small_graph)
        ds.add(Trajectory([0, 1, 2, 10, 11]))
        ds.add(Trajectory([20, 21, 22]))
        erp = ERPCost(small_graph, eta=0.0)
        # With eta=0, c(q) = min over other vertices of distance (tiny but
        # positive) — make tau far larger than the sum of filter costs while
        # staying below the degenerate-query bound (sum of ins costs).
        query = [0, 1, 2]
        c_total = sum(erp.filter_cost(q) for q in query)
        ins_total = sum(erp.ins(q) for q in query)
        tau = min(c_total * 50, ins_total * 0.9)
        if tau <= c_total:  # graph geometry made filter costs large: skip
            pytest.skip("filter costs too large to trigger fallback")
        engine = SubtrajectorySearch(ds, erp, fallback_to_scan=True)
        result = engine.query(query, tau=tau)
        assert result.used_fallback
        assert result_keys(result) == oracle(ds, query, erp, tau)

    def test_fallback_disabled_raises(self, small_graph):
        ds = TrajectoryDataset(small_graph)
        ds.add(Trajectory([0, 1, 2]))
        erp = ERPCost(small_graph, eta=0.0)
        query = [0, 1, 2]
        c_total = sum(erp.filter_cost(q) for q in query)
        ins_total = sum(erp.ins(q) for q in query)
        tau = min(c_total * 50, ins_total * 0.9)
        if tau <= c_total:
            pytest.skip("filter costs too large to trigger fallback")
        engine = SubtrajectorySearch(ds, erp, fallback_to_scan=False)
        with pytest.raises(QueryError):
            engine.query(query, tau=tau)
