"""Per-query eta tuning (§3.1 future-work feature)."""

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.core.eta_tuning import tune_eta
from repro.core.invindex import InvertedIndex
from repro.distance.costs import ERPCost
from repro.exceptions import QueryError
from tests.conftest import sample_query


@pytest.fixture()
def setup(small_graph, vertex_dataset, rng):
    index = InvertedIndex(vertex_dataset)
    query = sample_query(vertex_dataset, rng, 8)
    factory = lambda eta: ERPCost(small_graph, eta=eta)  # noqa: E731
    base = factory(1.0)
    tau = 0.15 * sum(base.filter_cost(q) + base.ins(q) for q in query) / 2
    return index, query, factory, tau


class TestTuneEta:
    def test_returns_feasible_eta(self, setup, small_graph):
        index, query, factory, tau = setup
        eta, trace = tune_eta(factory, query, tau, index)
        assert eta > 0
        assert any(c.feasible for c in trace)
        winning = [c for c in trace if c.eta == eta][0]
        assert winning.feasible

    def test_guarantee_point_is_feasible(self, setup):
        """eta = tau/|Q| guarantees a tau-subsequence (§3.1)."""
        index, query, factory, tau = setup
        eta, trace = tune_eta(
            factory, query, tau, index, grid=[tau / len(query)]
        )
        assert eta == tau / len(query)

    def test_prediction_matches_engine_candidates(
        self, setup, small_graph, vertex_dataset
    ):
        """The MinCand objective is exactly the engine's candidate count."""
        index, query, factory, tau = setup
        eta, trace = tune_eta(factory, query, tau, index)
        predicted = [c.predicted_candidates for c in trace if c.eta == eta][0]
        engine = SubtrajectorySearch(vertex_dataset, factory(eta))
        assert len(engine.candidates(query, tau=tau)) == predicted

    def test_winner_minimizes_prediction(self, setup):
        index, query, factory, tau = setup
        eta, trace = tune_eta(factory, query, tau, index)
        feasible = [c for c in trace if c.feasible]
        best = min(c.predicted_candidates for c in feasible)
        assert [c for c in trace if c.eta == eta][0].predicted_candidates == best

    def test_all_infeasible_raises(self, setup):
        index, query, factory, tau = setup
        # Absurdly small etas make c(q) tiny: no tau-subsequence.
        with pytest.raises(QueryError):
            tune_eta(factory, query, tau * 1e6, index, grid=[1e-12])

    def test_validates_inputs(self, setup):
        index, query, factory, tau = setup
        with pytest.raises(QueryError):
            tune_eta(factory, [], tau, index)
        with pytest.raises(QueryError):
            tune_eta(factory, query, 0.0, index)

    def test_tuned_engine_stays_exact(self, setup, small_graph, vertex_dataset):
        """Tuning changes performance, never correctness."""
        from repro.distance.smith_waterman import all_matches

        index, query, factory, tau = setup
        eta, _ = tune_eta(factory, query, tau, index)
        costs = factory(eta)
        engine = SubtrajectorySearch(vertex_dataset, costs)
        got = {
            (m.trajectory_id, m.start, m.end)
            for m in engine.query(query, tau=tau).matches
        }
        want = set()
        for tid in range(len(vertex_dataset)):
            for s, t, _ in all_matches(
                vertex_dataset.symbols(tid), query, costs, tau
            ):
                want.add((tid, s, t))
        assert got == want
