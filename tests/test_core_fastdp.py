"""Numpy StepDP backend: exact equivalence with the Python DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SubtrajectorySearch
from repro.core.verification import step_dp_numpy
from repro.distance.costs import LevenshteinCost
from repro.distance.wed import wed_step
from repro.exceptions import QueryError
from tests.conftest import sample_query

lev = LevenshteinCost()

floats = st.floats(min_value=0.0, max_value=50.0)


class TestStepDPNumpy:
    @given(
        prev=st.lists(floats, min_size=1, max_size=12),
        sub_seed=st.lists(floats, min_size=12, max_size=12),
        ins_seed=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=12, max_size=12),
        dele=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_sequential_recurrence(self, prev, sub_seed, ins_seed, dele):
        n = len(prev) - 1
        sub_row = sub_seed[:n]
        ins_row = ins_seed[:n]
        # Sequential reference.
        want = [prev[0] + dele]
        for j in range(1, n + 1):
            want.append(
                min(
                    prev[j - 1] + sub_row[j - 1],
                    prev[j] + dele,
                    want[j - 1] + ins_row[j - 1],
                )
            )
        ins_prefix = np.concatenate([[0.0], np.cumsum(ins_row)])
        got = step_dp_numpy(
            np.asarray(sub_row), dele, ins_prefix, np.asarray(prev, dtype=np.float64)
        )
        assert np.allclose(got, want)

    def test_empty_query_part(self):
        got = step_dp_numpy(np.asarray([]), 2.0, np.asarray([0.0]), np.asarray([5.0]))
        assert got.tolist() == [7.0]

    def test_matches_wed_step(self):
        query = [1, 2, 3, 4]
        prev = [0.0, 1.0, 2.0, 3.0, 4.0]
        want = wed_step(lev, query, 2, prev)
        ins_prefix = np.arange(5, dtype=np.float64)
        got = step_dp_numpy(
            np.asarray(lev.sub_row(2, query)), 1.0, ins_prefix, np.asarray(prev)
        )
        assert np.allclose(got, want)


class TestEngineBackendEquivalence:
    def test_unknown_backend_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend="fortran")

    @pytest.mark.parametrize("model_name", ["lev_cost", "edr_cost", "erp_cost", "surs_cost"])
    def test_same_results_as_python_backend(
        self, model_name, request, vertex_dataset, edge_dataset, rng
    ):
        costs = request.getfixturevalue(model_name)
        ds = edge_dataset if costs.representation == "edge" else vertex_dataset
        py = SubtrajectorySearch(ds, costs, dp_backend="python")
        np_engine = SubtrajectorySearch(ds, costs, dp_backend="numpy")
        for _ in range(3):
            query = sample_query(ds, rng, 6)
            a = py.query(query, tau_ratio=0.25)
            b = np_engine.query(query, tau_ratio=0.25)
            keys = lambda r: [(m.trajectory_id, m.start, m.end) for m in r.matches]  # noqa: E731
            assert keys(a) == keys(b)
            for ma, mb in zip(a.matches, b.matches):
                assert ma.distance == pytest.approx(mb.distance)

    def test_counters_identical_across_backends(self, vertex_dataset, edr_cost, rng):
        query = sample_query(vertex_dataset, rng, 6)
        py = SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend="python")
        npb = SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend="numpy")
        a = py.query(query, tau_ratio=0.2).verification
        b = npb.query(query, tau_ratio=0.2).verification
        assert a.visited_columns == b.visited_columns
        assert a.computed_columns == b.computed_columns

    def test_network_models_numpy_backend(
        self, vertex_dataset, netedr_cost, neterp_cost, rng
    ):
        """Network-distance cost models (cached-oracle sub_row) work under
        the vectorized backend too."""
        for costs in (netedr_cost, neterp_cost):
            py = SubtrajectorySearch(vertex_dataset, costs, dp_backend="python")
            npb = SubtrajectorySearch(vertex_dataset, costs, dp_backend="numpy")
            query = sample_query(vertex_dataset, rng, 5)
            a = py.query(query, tau_ratio=0.2)
            b = npb.query(query, tau_ratio=0.2)
            assert [(m.trajectory_id, m.start, m.end) for m in a.matches] == [
                (m.trajectory_id, m.start, m.end) for m in b.matches
            ]
