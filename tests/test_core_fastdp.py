"""Numpy StepDP backend: exact equivalence with the Python DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SubtrajectorySearch
from repro.core.verification import step_dp_batch, step_dp_numpy
from repro.distance.costs import LevenshteinCost
from repro.distance.wed import wed_step
from repro.exceptions import QueryError
from tests.conftest import sample_query

lev = LevenshteinCost()

floats = st.floats(min_value=0.0, max_value=50.0)


class TestStepDPNumpy:
    @staticmethod
    def _reference(prev, sub_row, ins_prefix, dele):
        """The repo-wide prefix-min evaluation (see repro.distance.wed),
        spelled out cell by cell."""
        n = len(prev) - 1
        first = prev[0] + dele
        want = [first]
        m = first - ins_prefix[0]
        for j in range(n):
            c = prev[j] + sub_row[j]
            via_del = prev[j + 1] + dele
            if via_del < c:
                c = via_del
            chain = ins_prefix[j + 1] + m
            want.append(c if c <= chain else chain)
            d = c - ins_prefix[j + 1]
            if d < m:
                m = d
        return want

    @given(
        prev=st.lists(floats, min_size=1, max_size=12),
        sub_seed=st.lists(floats, min_size=12, max_size=12),
        ins_seed=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=12, max_size=12),
        dele=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_python_convention(self, prev, sub_seed, ins_seed, dele):
        n = len(prev) - 1
        sub_row = sub_seed[:n]
        ins_prefix = [0.0]
        for c in ins_seed[:n]:
            ins_prefix.append(ins_prefix[-1] + c)
        want = self._reference(prev, sub_row, ins_prefix, dele)
        got = step_dp_numpy(
            np.asarray(sub_row),
            dele,
            np.asarray(ins_prefix),
            np.asarray(prev, dtype=np.float64),
        )
        # Bit-identical, not merely close: the strict < tau match semantics
        # must see the same numbers on both backends (see step_dp_numpy).
        assert got.tolist() == want
        # Equals the textbook recurrence wherever the arithmetic is exact;
        # in general within rounding of it.
        textbook = [prev[0] + dele]
        for j in range(1, n + 1):
            textbook.append(
                min(
                    prev[j - 1] + sub_row[j - 1],
                    prev[j] + dele,
                    textbook[j - 1] + (ins_prefix[j] - ins_prefix[j - 1]),
                )
            )
        assert np.allclose(got, textbook)

    @given(
        prev_seed=st.lists(floats, min_size=8, max_size=24),
        sub_seed=st.lists(floats, min_size=24, max_size=24),
        ins_seed=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=6, max_size=6),
        dele_seed=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=4, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_batch_rows_match_single_kernel(
        self, prev_seed, sub_seed, ins_seed, dele_seed
    ):
        """step_dp_batch row i == step_dp_numpy on row i, bit for bit."""
        n = len(ins_seed)
        rows = len(dele_seed)
        prev = np.asarray((prev_seed * 4)[: rows * (n + 1)]).reshape(rows, n + 1)
        subs = np.asarray((sub_seed * 2)[: rows * n]).reshape(rows, n)
        ins_prefix = np.concatenate([[0.0], np.asarray(ins_seed)]).cumsum()
        dels = np.asarray(dele_seed)
        batched = step_dp_batch(subs, dels, ins_prefix, prev)
        for i in range(rows):
            single = step_dp_numpy(subs[i], dels[i], ins_prefix, prev[i])
            assert batched[i].tolist() == single.tolist()

    def test_empty_query_part(self):
        got = step_dp_numpy(np.asarray([]), 2.0, np.asarray([0.0]), np.asarray([5.0]))
        assert got.tolist() == [7.0]

    def test_matches_wed_step(self):
        query = [1, 2, 3, 4]
        prev = [0.0, 1.0, 2.0, 3.0, 4.0]
        want = wed_step(lev, query, 2, prev)
        got = step_dp_numpy(
            np.asarray(lev.sub_row(2, query)),
            1.0,
            np.arange(5, dtype=np.float64),
            np.asarray(prev),
        )
        assert got.tolist() == want

    def test_exact_at_threshold_nonrepresentable_costs(self):
        """The regression that motivated the shared prefix-min convention:
        with non-representable costs (0.3/0.9), a naively regrouped kernel
        returned 0.29999999999999993 for a cell whose substitution branch
        is exactly 0.3, flipping the strict < tau comparison against the
        pure-Python backend."""
        prev = np.asarray([0.0, 0.9])
        got = step_dp_numpy(np.asarray([0.3]), 0.9, np.asarray([0.0, 0.9]), prev)
        assert got.tolist() == [0.9, 0.3]


class TestEngineBackendEquivalence:
    def test_unknown_backend_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend="fortran")

    @pytest.mark.parametrize("model_name", ["lev_cost", "edr_cost", "erp_cost", "surs_cost"])
    def test_same_results_as_python_backend(
        self, model_name, request, vertex_dataset, edge_dataset, rng
    ):
        costs = request.getfixturevalue(model_name)
        ds = edge_dataset if costs.representation == "edge" else vertex_dataset
        py = SubtrajectorySearch(ds, costs, dp_backend="python")
        np_engine = SubtrajectorySearch(ds, costs, dp_backend="numpy")
        for _ in range(3):
            query = sample_query(ds, rng, 6)
            a = py.query(query, tau_ratio=0.25)
            b = np_engine.query(query, tau_ratio=0.25)
            keys = lambda r: [(m.trajectory_id, m.start, m.end) for m in r.matches]  # noqa: E731
            assert keys(a) == keys(b)
            for ma, mb in zip(a.matches, b.matches):
                assert ma.distance == pytest.approx(mb.distance)

    def test_counters_identical_across_backends(self, vertex_dataset, edr_cost, rng):
        query = sample_query(vertex_dataset, rng, 6)
        py = SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend="python")
        npb = SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend="numpy")
        a = py.query(query, tau_ratio=0.2).verification
        b = npb.query(query, tau_ratio=0.2).verification
        assert a.visited_columns == b.visited_columns
        assert a.computed_columns == b.computed_columns

    def test_network_models_numpy_backend(
        self, vertex_dataset, netedr_cost, neterp_cost, rng
    ):
        """Network-distance cost models (cached-oracle sub_row) work under
        the vectorized backend too."""
        for costs in (netedr_cost, neterp_cost):
            py = SubtrajectorySearch(vertex_dataset, costs, dp_backend="python")
            npb = SubtrajectorySearch(vertex_dataset, costs, dp_backend="numpy")
            query = sample_query(vertex_dataset, rng, 5)
            a = py.query(query, tau_ratio=0.2)
            b = npb.query(query, tau_ratio=0.2)
            assert [(m.trajectory_id, m.start, m.end) for m in a.matches] == [
                (m.trajectory_id, m.start, m.end) for m in b.matches
            ]
