"""Subsequence filtering: query profiles and the Theorem 1 guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import query_profile, tau_from_ratio
from repro.core.invindex import InvertedIndex
from repro.distance.costs import LevenshteinCost
from repro.distance.wed import wed
from repro.exceptions import QueryError

lev = LevenshteinCost()


class TestQueryProfile:
    def test_empty_query_rejected(self, edr_cost):
        with pytest.raises(QueryError):
            query_profile([], edr_cost)

    def test_positions_and_symbols(self, edr_cost):
        prof = query_profile([3, 7, 3], edr_cost)
        assert [e.position for e in prof] == [0, 1, 2]
        assert [e.symbol for e in prof] == [3, 7, 3]

    def test_repeated_symbols_share_profile(self, edr_cost):
        prof = query_profile([3, 7, 3], edr_cost)
        assert prof[0].neighborhood == prof[2].neighborhood
        assert prof[0].cost == prof[2].cost

    def test_neighborhood_contains_symbol(self, edr_cost):
        for e in query_profile([0, 5, 9], edr_cost):
            assert e.symbol in e.neighborhood

    def test_counts_from_index(self, vertex_dataset, edr_cost):
        index = InvertedIndex(vertex_dataset)
        q = list(vertex_dataset.symbols(0))[:5]
        prof = query_profile(q, edr_cost, index)
        for e in prof:
            want = sum(index.frequency(b) for b in e.neighborhood)
            assert e.candidate_count == want
            assert e.candidate_count >= index.frequency(e.symbol) > 0

    def test_counts_zero_without_index(self, edr_cost):
        prof = query_profile([1, 2], edr_cost)
        assert all(e.candidate_count == 0 for e in prof)


class TestTauFromRatio:
    def test_levenshtein_linear_in_length(self):
        # c(q) = 1 for Lev, so tau = ratio * |Q|.
        assert tau_from_ratio([1, 2, 3, 4], lev, 0.5) == 2.0

    def test_bounds_checked(self):
        with pytest.raises(QueryError):
            tau_from_ratio([1], lev, -0.1)
        with pytest.raises(QueryError):
            tau_from_ratio([1], lev, 1.1)

    def test_zero_ratio(self):
        assert tau_from_ratio([1, 2], lev, 0.0) == 0.0


class TestTheorem1:
    """If P' shares no symbol with B(Q'), and c(Q') >= tau, then
    wed(P', Q) >= tau — verified by exhaustive search on random instances.
    """

    @given(
        data=st.lists(st.integers(0, 5), min_size=1, max_size=8),
        query=st.lists(st.integers(0, 5), min_size=1, max_size=5),
        tau=st.floats(min_value=0.5, max_value=4.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_levenshtein_filter_is_safe(self, data, query, tau):
        prof = query_profile(query, lev)
        # Any subsequence reaching tau must be safe; use a greedy prefix.
        chosen = []
        total = 0.0
        for e in prof:
            chosen.append(e)
            total += e.cost
            if total >= tau:
                break
        if total < tau:
            return  # no tau-subsequence: filter not applicable
        neighborhood = set()
        for e in chosen:
            neighborhood.update(e.neighborhood)
        if any(sym in neighborhood for sym in data):
            return  # P' shares a symbol: filter does not prune
        # The filter would prune `data`; Theorem 1 says no substring matches.
        for s in range(len(data)):
            for t in range(s, len(data)):
                assert wed(data[s : t + 1], query, lev) >= tau


class TestTheorem1WithNeighborhoods:
    def test_edr_neighbor_occurrence_not_pruned(self, small_graph):
        """A trajectory whose vertex is *near* (within epsilon of) a query
        vertex must survive filtering even without sharing exact symbols."""
        from repro.distance.costs import EDRCost

        edr = EDRCost(small_graph, epsilon=150.0)
        q = 9
        near = [v for v in edr.neighbors(q) if v != q]
        assert near, "test graph must have a neighbor within epsilon"
        prof = query_profile([q], edr)
        assert near[0] in prof[0].neighborhood
