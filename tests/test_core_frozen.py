"""Frozen mmap-able index tier (ISSUE 7): frozen == dict, bit for bit.

The frozen backend packs the dict index's postings into flat arrays and
serves them from a memory-mapped single-file container
(``docs/INDEX_FORMAT.md``), with a dict-backed delta overlay as the
mutable front.  Packing and mapping are pure representation changes —
postings come back as the same python-int tuples in the same order — so
this suite pins:

- raw postings / frequency / departure-sorted lookups identical across
  dict, in-memory frozen, and mmap'd frozen, including the edge cases
  (empty dataset, absent symbols, symbol present only in the delta);
- engine answers (matches AND VerificationStats) bit-identical between
  ``index_backend="dict"`` and ``"frozen"`` via hypothesis over synthetic
  datasets, through save → mmap-open round trips and online inserts;
- the file format rejects corruption loudly: bad magic, future versions,
  truncated sections, and malformed headers all raise
  :class:`~repro.core.frozen.IndexFormatError` with a saying-something
  message, never garbage answers;
- the partitioned engine resolves per-shard files and validates shard
  provenance (wrong shard count fails at construction, not at query);
- the ``repro index build`` / ``index inspect`` CLI round-trips.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.engine import SubtrajectorySearch
from repro.core.frozen import (
    FORMAT_VERSION,
    MAGIC,
    DeltaOverlayIndex,
    FrozenInvertedIndex,
    IndexFormatError,
    inspect_index,
    round_robin_shards,
    shard_index_path,
)
from repro.core.invindex import InvertedIndex
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.distance.costs import LevenshteinCost
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory

lev = LevenshteinCost()


@pytest.fixture()
def tiny_dataset(line_graph):
    ds = TrajectoryDataset(line_graph)
    ds.add(Trajectory([0, 1, 2], timestamps=[10.0, 11.0, 12.0]))
    ds.add(Trajectory([1, 2, 3], timestamps=[5.0, 6.0, 7.0]))
    ds.add(Trajectory([2, 1, 0], timestamps=[20.0, 21.0, 22.0]))
    return ds


def dataset_of(paths, graph):
    ds = TrajectoryDataset(graph)
    for path in paths:
        ds.add(Trajectory(list(path)))
    return ds


def assert_index_parity(dict_index, frozen_index, symbols):
    for sym in symbols:
        expect = list(dict_index.postings(sym))
        got = list(frozen_index.postings(sym))
        assert got == expect, sym
        assert all(
            isinstance(v, int) for p in got for v in p
        ), "postings must be python ints"
        assert frozen_index.frequency(sym) == dict_index.frequency(sym)
    assert frozen_index.num_symbols == dict_index.num_symbols
    assert frozen_index.num_postings == dict_index.num_postings


class TestFreezeParity:
    def test_postings_identical(self, vertex_dataset):
        dict_index = InvertedIndex(vertex_dataset)
        frozen = FrozenInvertedIndex.freeze(vertex_dataset)
        assert_index_parity(dict_index, frozen, range(80))

    def test_roundtrip_through_file(self, vertex_dataset, tmp_path):
        dict_index = InvertedIndex(vertex_dataset)
        frozen = FrozenInvertedIndex.freeze(vertex_dataset)
        path = tmp_path / "idx.reproidx"
        written = frozen.save(path)
        assert written == path.stat().st_size
        opened = FrozenInvertedIndex.open(path)
        assert opened.is_mmap
        assert opened.file_bytes() == written
        assert_index_parity(dict_index, opened, range(80))

    def test_departure_sorted_parity(self, tiny_dataset, tmp_path):
        dict_index = InvertedIndex(tiny_dataset, sort_by_departure=True)
        frozen = FrozenInvertedIndex.freeze(tiny_dataset, sort_by_departure=True)
        path = tmp_path / "sorted.reproidx"
        frozen.save(path)
        opened = FrozenInvertedIndex.open(path)
        assert opened.sorted_by_departure
        for index in (frozen, opened):
            assert_index_parity(dict_index, index, range(6))
            for sym in range(6):
                for latest in (0.0, 5.0, 10.0, 15.0, 25.0):
                    assert list(
                        index.postings_departing_before(sym, latest)
                    ) == list(dict_index.postings_departing_before(sym, latest))

    def test_unsorted_rejects_departure_lookup(self, tiny_dataset):
        frozen = FrozenInvertedIndex.freeze(tiny_dataset)
        with pytest.raises(ValueError, match="not sorted"):
            frozen.postings_departing_before(1, 10.0)

    def test_empty_dataset(self, line_graph, tmp_path):
        ds = TrajectoryDataset(line_graph)
        frozen = FrozenInvertedIndex.freeze(ds)
        assert frozen.num_symbols == 0
        assert frozen.num_postings == 0
        assert frozen.postings(0) == ()
        path = tmp_path / "empty.reproidx"
        frozen.save(path)
        opened = FrozenInvertedIndex.open(path)
        assert opened.num_postings == 0
        assert opened.postings(0) == ()
        assert opened.frequency(3) == 0

    def test_memory_well_under_dict(self, vertex_dataset, tmp_path):
        # The acceptance bar: packed file bytes <= 0.5x the dict index's
        # in-memory footprint (in practice far less).
        dict_bytes = InvertedIndex(vertex_dataset).memory_bytes()
        path = tmp_path / "idx.reproidx"
        written = FrozenInvertedIndex.freeze(vertex_dataset).save(path)
        assert written <= 0.5 * dict_bytes

    def test_postings_arrays_views(self, tiny_dataset):
        frozen = FrozenInvertedIndex.freeze(tiny_dataset)
        tids, positions = frozen.postings_arrays(1)
        assert list(zip(tids.tolist(), positions.tolist())) == list(
            frozen.postings(1)
        )
        empty_t, empty_p = frozen.postings_arrays(99)
        assert len(empty_t) == 0 and len(empty_p) == 0


class TestDeltaOverlay:
    def test_append_merges_after_base(self, line_graph):
        ds = dataset_of([[0, 1, 2]], line_graph)
        base = FrozenInvertedIndex.freeze(ds)
        overlay = DeltaOverlayIndex(base, ds)
        tid = ds.add(Trajectory([1, 2, 3]))
        overlay.append_trajectory(tid)
        # Mirror the same appends on a dict index: identical order.
        mirror = dataset_of([[0, 1, 2]], line_graph)
        dict_index = InvertedIndex(mirror)
        dict_index.append_trajectory(mirror.add(Trajectory([1, 2, 3])))
        assert_index_parity(dict_index, overlay, range(6))
        assert overlay.delta_postings == 3

    def test_symbol_only_in_delta(self, line_graph):
        ds = dataset_of([[0, 1]], line_graph)
        overlay = DeltaOverlayIndex(FrozenInvertedIndex.freeze(ds), ds)
        assert overlay.frequency(5) == 0
        tid = ds.add(Trajectory([4, 5]))
        overlay.append_trajectory(tid)
        assert list(overlay.postings(5)) == [(1, 1)]
        assert overlay.frequency(5) == 1
        # Base-only and base+delta symbols still merge base-first.
        assert list(overlay.postings(1)) == [(0, 1)]
        assert overlay.num_symbols == 4  # 0,1 in base; 4,5 delta-only

    def test_trailing_trajectories_indexed_at_construction(self, line_graph):
        ds = dataset_of([[0, 1]], line_graph)
        base = FrozenInvertedIndex.freeze(ds)
        ds.add(Trajectory([1, 2]))  # appended after the freeze
        overlay = DeltaOverlayIndex(base, ds)
        assert set(overlay.postings(1)) == {(0, 1), (1, 0)}
        assert overlay.delta_postings == 2

    def test_sorted_base_rejects_append(self, tiny_dataset):
        base = FrozenInvertedIndex.freeze(tiny_dataset, sort_by_departure=True)
        overlay = DeltaOverlayIndex(base, tiny_dataset)
        with pytest.raises(ValueError, match="departure-sorted"):
            overlay.append_trajectory(0)

    def test_stats_shape(self, tiny_dataset):
        overlay = DeltaOverlayIndex(
            FrozenInvertedIndex.freeze(tiny_dataset), tiny_dataset
        )
        stats = overlay.stats()
        assert stats["backend"] == "frozen"
        assert stats["mmap"] is False
        assert stats["delta_postings"] == 0
        assert stats["num_postings"] == 9
        assert overlay.memory_bytes() > 0


class TestFormatRejection:
    def make_file(self, dataset, tmp_path, name="idx.reproidx"):
        path = tmp_path / name
        FrozenInvertedIndex.freeze(dataset).save(path)
        return path

    def test_bad_magic(self, tiny_dataset, tmp_path):
        path = self.make_file(tiny_dataset, tmp_path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTANIDX"
        path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="bad magic"):
            FrozenInvertedIndex.open(path)

    def test_future_version(self, tiny_dataset, tmp_path):
        path = self.make_file(tiny_dataset, tmp_path)
        data = bytearray(path.read_bytes())
        data[8:10] = (FORMAT_VERSION + 1).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="newer than this reader"):
            FrozenInvertedIndex.open(path)

    def test_truncated_sections(self, tiny_dataset, tmp_path):
        path = self.make_file(tiny_dataset, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(IndexFormatError, match="truncated"):
            FrozenInvertedIndex.open(path)
        with pytest.raises(IndexFormatError, match="truncated"):
            inspect_index(path)

    def test_truncated_header(self, tiny_dataset, tmp_path):
        path = self.make_file(tiny_dataset, tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(IndexFormatError, match="truncated"):
            FrozenInvertedIndex.open(path)

    def test_corrupted_header_json(self, tiny_dataset, tmp_path):
        path = self.make_file(tiny_dataset, tmp_path)
        data = bytearray(path.read_bytes())
        data[16:20] = b"\xff\xfe\xfd\xfc"  # stomp the JSON header
        path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="corrupted"):
            FrozenInvertedIndex.open(path)

    def test_not_a_file_at_all(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"hello")
        with pytest.raises(IndexFormatError, match="bad magic"):
            FrozenInvertedIndex.open(path)

    def test_inspect_reports_header(self, tiny_dataset, tmp_path):
        path = self.make_file(tiny_dataset, tmp_path)
        info = inspect_index(path)
        assert info["format_version"] == FORMAT_VERSION
        assert info["num_postings"] == 9
        assert info["num_trajectories"] == 3
        assert set(info["sections"]) == {
            "symbols", "offsets", "tids", "positions",
        }
        assert info["file_bytes"] == path.stat().st_size
        assert MAGIC == b"REPROIDX"


class TestEngineBackend:
    def query_of(self, dataset):
        return list(dataset.symbols(0))[:5]

    def test_engine_parity_in_memory(self, vertex_dataset):
        q = self.query_of(vertex_dataset)
        ref = SubtrajectorySearch(vertex_dataset, lev).query(q, tau=2.0)
        got = SubtrajectorySearch(
            vertex_dataset, lev, index_backend="frozen"
        ).query(q, tau=2.0)
        assert got.matches == ref.matches
        assert got.num_candidates == ref.num_candidates
        assert got.verification == ref.verification

    def test_engine_parity_from_file(self, vertex_dataset, tmp_path):
        path = tmp_path / "idx.reproidx"
        FrozenInvertedIndex.freeze(vertex_dataset).save(path)
        q = self.query_of(vertex_dataset)
        ref = SubtrajectorySearch(vertex_dataset, lev).query(q, tau=2.0)
        engine = SubtrajectorySearch(
            vertex_dataset, lev, index_backend="frozen", index_path=str(path)
        )
        got = engine.query(q, tau=2.0)
        assert got.matches == ref.matches
        assert got.verification == ref.verification
        stats = engine.index_stats()
        assert stats["backend"] == "frozen"
        assert stats["mmap"] is True
        assert stats["file_bytes"] == path.stat().st_size

    def test_engine_add_trajectory_on_frozen(self, line_graph):
        ds = dataset_of([[0, 1, 2], [2, 3, 4]], line_graph)
        mirror = dataset_of([[0, 1, 2], [2, 3, 4]], line_graph)
        frozen_engine = SubtrajectorySearch(ds, lev, index_backend="frozen")
        dict_engine = SubtrajectorySearch(mirror, lev)
        frozen_engine.add_trajectory(Trajectory([1, 2, 3]))
        dict_engine.add_trajectory(Trajectory([1, 2, 3]))
        ref = dict_engine.query([1, 2, 3], tau=1.0)
        got = frozen_engine.query([1, 2, 3], tau=1.0)
        assert got.matches == ref.matches
        assert frozen_engine.index_stats()["delta_postings"] == 3

    def test_dict_engine_rejects_index_path(self, vertex_dataset, tmp_path):
        with pytest.raises(QueryError, match="index_backend='frozen'"):
            SubtrajectorySearch(
                vertex_dataset, lev, index_path=str(tmp_path / "x")
            )
        with pytest.raises(QueryError, match="unknown index_backend"):
            SubtrajectorySearch(vertex_dataset, lev, index_backend="mmap")

    def test_validation_mismatches(self, vertex_dataset, line_graph, tmp_path):
        path = tmp_path / "idx.reproidx"
        FrozenInvertedIndex.freeze(vertex_dataset).save(path)
        # Fewer dataset trajectories than the index covers.
        small = dataset_of([[0, 1]], line_graph)
        with pytest.raises(QueryError, match="covers"):
            SubtrajectorySearch(
                small, lev, index_backend="frozen", index_path=str(path)
            )
        # Sort-flag mismatch.
        with pytest.raises(QueryError, match="sort_by_departure"):
            SubtrajectorySearch(
                vertex_dataset, lev, index_backend="frozen",
                index_path=str(path), sort_by_departure=True,
            )
        # A sharded file fed to an unsharded engine.
        sharded = tmp_path / "shard.reproidx"
        FrozenInvertedIndex.freeze(
            vertex_dataset, shard=(0, 2), global_trajectories=60
        ).save(sharded)
        with pytest.raises(QueryError, match="unsharded"):
            SubtrajectorySearch(
                vertex_dataset, lev, index_backend="frozen",
                index_path=str(sharded),
            )

    def test_dict_index_stats(self, vertex_dataset):
        engine = SubtrajectorySearch(vertex_dataset, lev)
        stats = engine.index_stats()
        assert stats["backend"] == "dict"
        assert stats["mmap"] is False
        assert stats["bytes"] > 0
        # Memoized walk: a repeat probe reuses the byte figure.
        assert engine.index_stats()["bytes"] == stats["bytes"]
        assert "index" in engine.cache_stats()


class TestPartitioned:
    def build_shards(self, dataset, stem, num_shards):
        for i, shard in enumerate(round_robin_shards(dataset, num_shards)):
            FrozenInvertedIndex.freeze(
                shard,
                shard=None if num_shards == 1 else (i, num_shards),
                global_trajectories=len(dataset),
            ).save(shard_index_path(stem, i, num_shards))

    @pytest.mark.parametrize("backend", ["serial", "processes"])
    def test_partitioned_parity(self, vertex_dataset, tmp_path, backend):
        stem = str(tmp_path / "idx.reproidx")
        self.build_shards(vertex_dataset, stem, 3)
        q = list(vertex_dataset.symbols(0))[:5]
        ref = SubtrajectorySearch(vertex_dataset, lev).query(q, tau=2.0)
        with PartitionedSubtrajectorySearch(
            vertex_dataset, lev, num_shards=3, backend=backend,
            index_backend="frozen", index_path=stem,
        ) as engine:
            got = engine.query(q, tau=2.0)
            assert got.matches == ref.matches
            stats = engine.index_stats()
            assert stats["backend"] == "frozen"
            assert stats["mmap"] is True
            assert stats["num_postings"] == vertex_dataset.total_symbols()
            combined = engine.cache_stats()
            assert combined["index"]["shards"] == 3

    def test_wrong_shard_count_fails_loudly(self, vertex_dataset, tmp_path):
        stem = str(tmp_path / "idx.reproidx")
        self.build_shards(vertex_dataset, stem, 2)
        with pytest.raises((QueryError, IndexFormatError, OSError)):
            PartitionedSubtrajectorySearch(
                vertex_dataset, lev, num_shards=3, backend="serial",
                index_backend="frozen", index_path=stem,
            )

    def test_index_path_requires_frozen(self, vertex_dataset, tmp_path):
        with pytest.raises(QueryError, match="index_backend='frozen'"):
            PartitionedSubtrajectorySearch(
                vertex_dataset, lev, num_shards=2,
                index_path=str(tmp_path / "x"),
            )

    def test_round_robin_matches_partitioner(self, vertex_dataset):
        shards = round_robin_shards(vertex_dataset, 3)
        assert sum(len(s) for s in shards) == len(vertex_dataset)
        for i, shard in enumerate(shards):
            for local, traj in enumerate(shard):
                assert traj.path == vertex_dataset[local * 3 + i].path

    def test_shard_index_path_naming(self):
        assert shard_index_path("idx", 0, 1) == "idx"
        assert shard_index_path("idx", 1, 4) == "idx.shard1-of-4"


class TestCLI:
    @pytest.fixture()
    def workspace(self, tmp_path):
        net = str(tmp_path / "net.json")
        trips = str(tmp_path / "trips.jsonl")
        assert main([
            "generate-network", "--style", "grid", "--rows", "8",
            "--cols", "8", "--seed", "3", "--out", net,
        ]) == 0
        assert main([
            "generate-trips", "--network", net, "--count", "40",
            "--seed", "4", "--out", trips,
        ]) == 0
        return net, trips

    def test_build_and_inspect(self, workspace, tmp_path, capsys):
        net, trips = workspace
        out = str(tmp_path / "idx.reproidx")
        assert main([
            "index", "build", "--network", net, "--trips", trips,
            "--out", out,
        ]) == 0
        built = json.loads(capsys.readouterr().out)
        assert built["shards"] == 1
        assert built["files"] == [out]
        assert built["file_bytes"] > 0
        assert main(["index", "inspect", out]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format_version"] == FORMAT_VERSION
        assert info["num_trajectories"] == 40

    def test_build_sharded(self, workspace, tmp_path, capsys):
        net, trips = workspace
        out = str(tmp_path / "idx.reproidx")
        assert main([
            "index", "build", "--network", net, "--trips", trips,
            "--out", out, "--shards", "2",
        ]) == 0
        built = json.loads(capsys.readouterr().out)
        assert built["shards"] == 2
        assert built["files"] == [
            f"{out}.shard0-of-2", f"{out}.shard1-of-2",
        ]

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"not an index")
        with pytest.raises(SystemExit, match="cannot inspect"):
            main(["index", "inspect", str(bad)])

    def test_serve_self_test_with_index(self, workspace, tmp_path, capsys):
        net, trips = workspace
        out = str(tmp_path / "idx.reproidx")
        assert main([
            "index", "build", "--network", net, "--trips", trips,
            "--out", out,
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--network", net, "--trips", trips, "--index", out,
            "--self-test", "--function", "lev",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["self_test"] == "ok"


# -- hypothesis parity --------------------------------------------------------

paths = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=8),
    min_size=1,
    max_size=8,
)
queries = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6)


class TestHypothesisParity:
    @settings(deadline=None, max_examples=40)
    @given(paths=paths, query=queries, tau=st.sampled_from([0.5, 1.0, 2.0]))
    def test_build_mmap_query_equals_dict(
        self, line_graph, tmp_path_factory, paths, query, tau
    ):
        tau = min(tau, float(len(query)))  # keep the query non-degenerate
        ds = dataset_of(paths, line_graph)
        dict_engine = SubtrajectorySearch(ds, lev)
        path = tmp_path_factory.mktemp("frozen") / "idx.reproidx"
        FrozenInvertedIndex.freeze(ds).save(path)
        frozen_engine = SubtrajectorySearch(
            ds, lev, index_backend="frozen", index_path=str(path)
        )
        ref = dict_engine.query(query, tau=tau)
        got = frozen_engine.query(query, tau=tau)
        assert got.matches == ref.matches
        assert got.num_candidates == ref.num_candidates
        assert got.verification == ref.verification
        assert got.used_fallback == ref.used_fallback

    @settings(deadline=None, max_examples=25)
    @given(
        paths=paths,
        extra=st.lists(
            st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6),
            min_size=1,
            max_size=3,
        ),
        query=queries,
    )
    def test_online_inserts_stay_identical(
        self, line_graph, paths, extra, query
    ):
        ds = dataset_of(paths, line_graph)
        mirror = dataset_of(paths, line_graph)
        frozen_engine = SubtrajectorySearch(ds, lev, index_backend="frozen")
        dict_engine = SubtrajectorySearch(mirror, lev)
        for p in extra:
            assert frozen_engine.add_trajectory(
                Trajectory(list(p))
            ) == dict_engine.add_trajectory(Trajectory(list(p)))
        tau = min(1.5, float(len(query)))  # keep the query non-degenerate
        ref = dict_engine.query(query, tau=tau)
        got = frozen_engine.query(query, tau=tau)
        assert got.matches == ref.matches
        assert got.verification == ref.verification
