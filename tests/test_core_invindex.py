"""Inverted index: postings correctness, updates, temporal ordering."""

import pytest

from repro.core.invindex import InvertedIndex
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


@pytest.fixture()
def tiny_dataset(line_graph):
    ds = TrajectoryDataset(line_graph)
    ds.add(Trajectory([0, 1, 2], timestamps=[10.0, 11.0, 12.0]))
    ds.add(Trajectory([1, 2, 3], timestamps=[5.0, 6.0, 7.0]))
    ds.add(Trajectory([2, 1, 0], timestamps=[20.0, 21.0, 22.0]))
    return ds


class TestPostings:
    def test_positions_recorded(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        assert set(index.postings(1)) == {(0, 1), (1, 0), (2, 1)}
        assert set(index.postings(0)) == {(0, 0), (2, 2)}

    def test_missing_symbol_empty(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        assert index.postings(99) == ()
        assert index.frequency(99) == 0

    def test_frequency_counts_occurrences(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        assert index.frequency(2) == 3

    def test_full_dataset_coverage(self, vertex_dataset):
        index = InvertedIndex(vertex_dataset)
        assert index.num_postings == vertex_dataset.total_symbols()
        # Every symbol of every trajectory must be findable.
        for tid in range(len(vertex_dataset)):
            for pos, sym in enumerate(vertex_dataset.symbols(tid)):
                assert (tid, pos) in set(index.postings(sym))

    def test_edge_representation(self, edge_dataset):
        index = InvertedIndex(edge_dataset)
        assert index.num_postings == edge_dataset.total_symbols()

    def test_memory_estimate_positive(self, tiny_dataset):
        assert InvertedIndex(tiny_dataset).memory_bytes() > 0

    def test_build_time_recorded(self, tiny_dataset):
        assert InvertedIndex(tiny_dataset).build_seconds >= 0.0


class TestAppend:
    def test_append_trajectory(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1]))
        index = InvertedIndex(ds)
        tid = ds.add(Trajectory([1, 2]))
        index.append_trajectory(tid)
        assert set(index.postings(1)) == {(0, 1), (1, 0)}

    def test_append_rejected_on_sorted_index(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset, sort_by_departure=True)
        with pytest.raises(ValueError):
            index.append_trajectory(0)


class TestDepartureSorted:
    def test_postings_sorted_by_departure(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset, sort_by_departure=True)
        plist = index.postings(1)
        departures = [tiny_dataset[tid].start_time for tid, _ in plist]
        assert departures == sorted(departures)

    def test_binary_search_bound(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset, sort_by_departure=True)
        # Trajectory departures touching symbol 1: 5.0 (id 1), 10.0 (id 0),
        # 20.0 (id 2).
        assert {tid for tid, _ in index.postings_departing_before(1, 15.0)} == {0, 1}
        assert {tid for tid, _ in index.postings_departing_before(1, 4.0)} == set()
        assert len(index.postings_departing_before(1, 100.0)) == 3

    def test_unsorted_index_rejects_temporal_lookup(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        with pytest.raises(ValueError):
            index.postings_departing_before(1, 10.0)

    def test_missing_symbol(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset, sort_by_departure=True)
        assert index.postings_departing_before(99, 10.0) == ()
