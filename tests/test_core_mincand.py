"""MinCand solvers: Algorithm 1 vs the exact optimum (Propositions 3-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import QueryElement
from repro.core.mincand import (
    mincand_all,
    mincand_exact,
    mincand_greedy,
    mincand_prefix,
)
from repro.exceptions import QueryError


def make_elements(costs, counts):
    return [
        QueryElement(position=i, symbol=100 + i, cost=c, neighborhood=(100 + i,), candidate_count=n)
        for i, (c, n) in enumerate(zip(costs, counts))
    ]


def objective(chosen):
    return sum(e.candidate_count for e in chosen)


def coverage(chosen):
    return sum(e.cost for e in chosen)


class TestPaperExamples:
    def test_example_6(self):
        """Q=ABCD, c=[1,2,3,4], N=[5,2,9,8], tau=4 -> greedy picks B then D."""
        elements = make_elements([1, 2, 3, 4], [5, 2, 9, 8])
        chosen = mincand_greedy(elements, 4.0)
        assert [e.position for e in chosen] == [1, 3]
        assert objective(chosen) == 10
        # The optimum is {D} with objective 8 — greedy is within 2x.
        exact = mincand_exact(elements, 4.0)
        assert objective(exact) == 8
        assert objective(chosen) <= 2 * objective(exact)

    def test_example_5(self):
        """Q=ABC with B(B)={B,D}: objective counts neighborhood postings."""
        # c(A)=3, c(B)=1, c(C)=2; N computed over neighborhoods:
        # N_A=5, N_B=n(B)+n(D)=10, N_C=3 ... optimal tau=3 subsequence is A.
        elements = [
            QueryElement(0, 0, 3.0, (0,), 5),
            QueryElement(1, 1, 1.0, (1, 3), 10),
            QueryElement(2, 2, 2.0, (2,), 3),
        ]
        exact = mincand_exact(elements, 3.0)
        assert [e.position for e in exact] == [0]
        assert objective(exact) == 5


class TestGreedy:
    def test_feasibility(self):
        elements = make_elements([1, 1, 1, 1], [4, 3, 2, 1])
        chosen = mincand_greedy(elements, 2.5)
        assert coverage(chosen) >= 2.5

    def test_zero_tau_chooses_nothing(self):
        elements = make_elements([1, 1], [1, 1])
        assert mincand_greedy(elements, 0.0) == []

    def test_infeasible_raises(self):
        elements = make_elements([0.5, 0.5], [1, 1])
        with pytest.raises(QueryError):
            mincand_greedy(elements, 2.0)

    def test_zero_cost_elements_never_chosen(self):
        elements = make_elements([0.0, 1.0, 0.0, 1.0], [0, 5, 0, 5])
        chosen = mincand_greedy(elements, 2.0)
        assert all(e.cost > 0 for e in chosen)

    def test_constant_cost_picks_smallest_counts(self):
        """Proposition 4: with constant c(q), greedy returns the optimum
        (the k least frequent symbols)."""
        elements = make_elements([1, 1, 1, 1, 1], [9, 2, 7, 1, 5])
        chosen = mincand_greedy(elements, 3.0)
        assert sorted(e.candidate_count for e in chosen) == [1, 2, 5]
        exact = mincand_exact(elements, 3.0)
        assert objective(chosen) == objective(exact)

    def test_output_sorted_by_position(self):
        elements = make_elements([1, 1, 1], [3, 1, 2])
        chosen = mincand_greedy(elements, 2.0)
        assert [e.position for e in chosen] == sorted(e.position for e in chosen)

    @given(
        costs=st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=1, max_size=9),
        counts_seed=st.lists(st.integers(0, 50), min_size=9, max_size=9),
        ratio=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_two_approximation(self, costs, counts_seed, ratio):
        """Proposition 3: greedy objective <= 2 * optimal objective."""
        counts = counts_seed[: len(costs)]
        elements = make_elements(costs, counts)
        tau = ratio * sum(costs)
        if tau <= 0:
            return
        greedy = mincand_greedy(elements, tau)
        exact = mincand_exact(elements, tau)
        assert coverage(greedy) >= tau - 1e-9
        assert objective(greedy) <= 2 * objective(exact) + 1e-9

    @given(
        counts=st.lists(st.integers(0, 50), min_size=1, max_size=10),
        ratio=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_constant_cost_optimality(self, counts, ratio):
        """Proposition 4 as a property."""
        elements = make_elements([1.0] * len(counts), counts)
        tau = ratio * len(counts)
        greedy = mincand_greedy(elements, tau)
        exact = mincand_exact(elements, tau)
        assert objective(greedy) == objective(exact)


class TestExact:
    def test_refuses_large_inputs(self):
        elements = make_elements([1.0] * 25, [1] * 25)
        with pytest.raises(QueryError):
            mincand_exact(elements, 1.0)

    def test_finds_minimum(self):
        elements = make_elements([2.0, 1.0, 1.0], [10, 1, 1])
        exact = mincand_exact(elements, 2.0)
        assert objective(exact) == 2  # the two cheap elements


class TestPrefix:
    def test_shortest_prefix(self):
        elements = make_elements([1.0, 1.0, 1.0], [5, 5, 5])
        chosen = mincand_prefix(elements, 2.0)
        assert [e.position for e in chosen] == [0, 1]

    def test_infeasible_raises(self):
        with pytest.raises(QueryError):
            mincand_prefix(make_elements([0.4], [1]), 1.0)

    def test_never_smaller_objective_than_exact(self):
        elements = make_elements([1, 1, 1, 1], [9, 9, 1, 1])
        prefix = mincand_prefix(elements, 2.0)
        exact = mincand_exact(elements, 2.0)
        assert objective(prefix) >= objective(exact)


class TestAll:
    def test_returns_everything(self):
        elements = make_elements([1.0, 1.0], [1, 2])
        assert mincand_all(elements, 1.0) == elements
