"""Online index updates: engine.add_trajectory (§4.1)."""

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import LevenshteinCost
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


@pytest.fixture()
def engine(line_graph):
    ds = TrajectoryDataset(line_graph)
    ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
    return SubtrajectorySearch(ds, LevenshteinCost())


class TestOnlineUpdates:
    def test_new_trajectory_becomes_searchable(self, engine):
        before = engine.query([3, 4, 5], tau=1.0)
        assert before.matches == []
        tid = engine.add_trajectory(Trajectory([3, 4, 5], timestamps=[0, 1, 2]))
        after = engine.query([3, 4, 5], tau=1.0)
        assert [(m.trajectory_id, m.start, m.end) for m in after.matches] == [
            (tid, 0, 2)
        ]

    def test_matches_rebuilt_engine(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
        incremental = SubtrajectorySearch(ds, LevenshteinCost())
        new = [
            Trajectory([1, 2, 3], timestamps=[5, 6, 7]),
            Trajectory([2, 3, 4, 5], timestamps=[1, 2, 3, 4]),
        ]
        for t in new:
            incremental.add_trajectory(t)
        rebuilt = SubtrajectorySearch(ds, LevenshteinCost())
        for query in ([1, 2], [2, 3, 4], [0, 5]):
            a = incremental.query(query, tau=1.5)
            b = rebuilt.query(query, tau=1.5)
            assert a.matches == b.matches

    def test_validate_flag(self, engine):
        with pytest.raises(Exception):
            engine.add_trajectory(Trajectory([0, 5]), validate=True)

    def test_sorted_index_rejects_updates(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1], timestamps=[0, 1]))
        engine = SubtrajectorySearch(
            ds, LevenshteinCost(), sort_by_departure=True
        )
        with pytest.raises(ValueError):
            engine.add_trajectory(Trajectory([1, 2], timestamps=[0, 1]))

    @pytest.mark.parametrize("index_backend", ["dict", "frozen"])
    def test_publication_is_atomic_per_trajectory(
        self, line_graph, index_backend, monkeypatch
    ):
        """A reader racing ``add_trajectory`` must never observe a
        half-indexed trajectory: while the index is still iterating the
        new trajectory's symbols, *none* of its postings may be visible
        (they publish together in one ``dict.update``).

        Deterministic spelling of the race: a spy on
        ``dataset.symbols`` snapshots the index's view of the new
        trajectory at every yield — exactly the points where the old
        per-symbol publication had already leaked a prefix."""
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
        engine = SubtrajectorySearch(
            ds, LevenshteinCost(), index_backend=index_backend
        )
        index = engine.index
        new_tid = len(ds)
        new_path = [3, 4, 5]
        seen_mid_insert = []
        real_symbols = TrajectoryDataset.symbols

        def spying_symbols(dataset, tid):
            for sym in real_symbols(dataset, tid):
                if tid == new_tid:
                    seen_mid_insert.append(
                        any(
                            any(p[0] == new_tid for p in index.postings(s))
                            for s in new_path
                        )
                    )
                yield sym

        monkeypatch.setattr(TrajectoryDataset, "symbols", spying_symbols)
        tid = engine.add_trajectory(
            Trajectory(new_path, timestamps=[0, 1, 2])
        )
        assert tid == new_tid
        # The spy ran (one snapshot per symbol) and never saw a prefix.
        assert len(seen_mid_insert) == len(new_path)
        assert not any(seen_mid_insert)
        # After the single publication step, every posting is visible.
        for pos, sym in enumerate(new_path):
            assert (tid, pos) in tuple(index.postings(sym))
