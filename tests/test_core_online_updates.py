"""Online index updates: engine.add_trajectory (§4.1)."""

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import LevenshteinCost
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


@pytest.fixture()
def engine(line_graph):
    ds = TrajectoryDataset(line_graph)
    ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
    return SubtrajectorySearch(ds, LevenshteinCost())


class TestOnlineUpdates:
    def test_new_trajectory_becomes_searchable(self, engine):
        before = engine.query([3, 4, 5], tau=1.0)
        assert before.matches == []
        tid = engine.add_trajectory(Trajectory([3, 4, 5], timestamps=[0, 1, 2]))
        after = engine.query([3, 4, 5], tau=1.0)
        assert [(m.trajectory_id, m.start, m.end) for m in after.matches] == [
            (tid, 0, 2)
        ]

    def test_matches_rebuilt_engine(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
        incremental = SubtrajectorySearch(ds, LevenshteinCost())
        new = [
            Trajectory([1, 2, 3], timestamps=[5, 6, 7]),
            Trajectory([2, 3, 4, 5], timestamps=[1, 2, 3, 4]),
        ]
        for t in new:
            incremental.add_trajectory(t)
        rebuilt = SubtrajectorySearch(ds, LevenshteinCost())
        for query in ([1, 2], [2, 3, 4], [0, 5]):
            a = incremental.query(query, tau=1.5)
            b = rebuilt.query(query, tau=1.5)
            assert a.matches == b.matches

    def test_validate_flag(self, engine):
        with pytest.raises(Exception):
            engine.add_trajectory(Trajectory([0, 5]), validate=True)

    def test_sorted_index_rejects_updates(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1], timestamps=[0, 1]))
        engine = SubtrajectorySearch(
            ds, LevenshteinCost(), sort_by_departure=True
        )
        with pytest.raises(ValueError):
            engine.add_trajectory(Trajectory([1, 2], timestamps=[0, 1]))
