"""Partitioned engine: sharded search equals single-node search."""

import threading

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.remote import WorkerNodeServer
from repro.core.temporal import TimeInterval
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset
from tests.conftest import sample_query


@pytest.fixture(scope="module")
def remote_nodes():
    """Three in-thread worker nodes on ephemeral ports (remote backend)."""
    servers, threads = [], []
    for _ in range(3):
        server = WorkerNodeServer("127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_forever, name="repro-test-node", daemon=True
        )
        thread.start()
        servers.append(server)
        threads.append(thread)
    yield [s.address for s in servers]
    for server in servers:
        server.close()
    # Leaked acceptor threads would flip default_start_method() to
    # "spawn" for every later test in the run.
    for thread in threads:
        thread.join(10)


def keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


class TestConstruction:
    def test_invalid_shard_count(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            PartitionedSubtrajectorySearch(vertex_dataset, edr_cost, num_shards=0)

    def test_empty_dataset_rejected(self, small_graph, edr_cost):
        with pytest.raises(QueryError):
            PartitionedSubtrajectorySearch(
                TrajectoryDataset(small_graph), edr_cost
            )

    def test_shards_capped_by_dataset_size(self, small_graph, edr_cost, trips):
        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        ds.add(trips[1])
        p = PartitionedSubtrajectorySearch(ds, edr_cost, num_shards=16)
        assert p.num_shards == 2


class TestExactness:
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_matches_single_node(self, vertex_dataset, edr_cost, rng, num_shards):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=num_shards
        )
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 6)
            a = single.query(query, tau_ratio=0.25)
            b = sharded.query(query, tau_ratio=0.25)
            assert keys(a) == keys(b)
            assert a.tau == b.tau

    def test_distances_preserved(self, vertex_dataset, edr_cost, rng):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3
        )
        query = sample_query(vertex_dataset, rng, 6)
        a = single.query(query, tau_ratio=0.25)
        b = sharded.query(query, tau_ratio=0.25)
        for ma, mb in zip(a.matches, b.matches):
            assert ma.distance == pytest.approx(mb.distance)

    def test_temporal_constraints_pass_through(self, vertex_dataset, edr_cost, rng):
        times = sorted(
            vertex_dataset[t].start_time for t in range(len(vertex_dataset))
        )
        interval = TimeInterval(times[0], times[len(times) // 2])
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=4
        )
        query = sample_query(vertex_dataset, rng, 6)
        a = single.query(query, tau_ratio=0.25, time_interval=interval)
        b = sharded.query(query, tau_ratio=0.25, time_interval=interval)
        assert keys(a) == keys(b)

    def test_engine_options_forwarded(self, vertex_dataset, edr_cost, rng):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=3,
            verification="sw",
            selector="prefix",
        )
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        assert keys(sharded.query(query, tau_ratio=0.25)) == keys(
            single.query(query, tau_ratio=0.25)
        )

    def test_stats_aggregate_over_shards(self, vertex_dataset, edr_cost, rng):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3
        )
        query = sample_query(vertex_dataset, rng, 6)
        result = sharded.query(query, tau_ratio=0.25)
        assert result.num_candidates >= 0
        assert result.verification.sw_columns > 0


class TestParallelFanOut:
    @pytest.mark.parametrize("max_workers", [1, 2, 8])
    def test_parallel_matches_serial(self, vertex_dataset, edr_cost, rng, max_workers):
        serial = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=4
        )
        parallel = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=4, max_workers=max_workers
        )
        try:
            for _ in range(3):
                query = sample_query(vertex_dataset, rng, 6)
                a = serial.query(query, tau_ratio=0.25)
                b = parallel.query(query, tau_ratio=0.25)
                assert keys(a) == keys(b)
                assert [m.distance for m in a.matches] == pytest.approx(
                    [m.distance for m in b.matches]
                )
        finally:
            parallel.close()

    def test_invalid_max_workers(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            PartitionedSubtrajectorySearch(
                vertex_dataset, edr_cost, max_workers=0
            )

    def test_shard_callables_merge_equals_query(self, vertex_dataset, edr_cost, rng):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3
        )
        query = sample_query(vertex_dataset, rng, 6)
        calls = sharded.shard_query_callables(query, tau_ratio=0.25)
        assert len(calls) == sharded.num_shards
        merged = sharded.merge_shard_results([call() for call in calls])
        assert keys(merged) == keys(sharded.query(query, tau_ratio=0.25))

    def test_merge_rejects_wrong_result_count(self, vertex_dataset, edr_cost, rng):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3
        )
        query = sample_query(vertex_dataset, rng, 6)
        calls = sharded.shard_query_callables(query, tau_ratio=0.25)
        with pytest.raises(QueryError):
            sharded.merge_shard_results([calls[0]()])


class TestBackends:
    """The backend knob: identical answers, differing only in who runs
    the shard fan-out (caller / thread pool / worker processes)."""

    @pytest.mark.parametrize(
        "backend,kwargs",
        [
            ("serial", {}),
            ("threads", {}),
            ("threads", {"max_workers": 2}),
            ("processes", {}),
            ("remote", {}),
        ],
    )
    def test_every_backend_matches_single_node(
        self, request, vertex_dataset, edr_cost, rng, backend, kwargs
    ):
        if backend == "remote":
            kwargs = dict(kwargs, shard_map=request.getfixturevalue("remote_nodes"))
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        with PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3, backend=backend, **kwargs
        ) as sharded:
            assert sharded.backend == backend
            query = sample_query(vertex_dataset, rng, 6)
            a = single.query(query, tau_ratio=0.25)
            b = sharded.query(query, tau_ratio=0.25)
            assert keys(a) == keys(b)
            assert [m.distance for m in a.matches] == pytest.approx(
                [m.distance for m in b.matches]
            )

    def test_close_idempotent_on_every_backend(
        self, vertex_dataset, edr_cost, remote_nodes
    ):
        for backend in ("serial", "threads", "processes", "remote"):
            engine = PartitionedSubtrajectorySearch(
                vertex_dataset,
                edr_cost,
                num_shards=2,
                backend=backend,
                shard_map=remote_nodes if backend == "remote" else None,
            )
            engine.close()
            engine.close()

    def test_closed_engine_fails_loudly_on_every_backend(
        self, vertex_dataset, edr_cost, rng, remote_nodes
    ):
        # No backend may silently degrade (e.g. threads falling back to a
        # serial scan) after close: use-after-close is a caller bug.
        for backend in ("serial", "threads", "processes", "remote"):
            engine = PartitionedSubtrajectorySearch(
                vertex_dataset,
                edr_cost,
                num_shards=2,
                backend=backend,
                shard_map=remote_nodes if backend == "remote" else None,
            )
            engine.close()
            with pytest.raises(QueryError):
                engine.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)


class TestOnlineUpdates:
    def test_add_trajectory_matches_rebuilt(self, small_graph, edr_cost, trips):
        ds = TrajectoryDataset(small_graph)
        for t in trips[:10]:
            ds.add(t)
        sharded = PartitionedSubtrajectorySearch(ds, edr_cost, num_shards=3)
        for t in trips[10:16]:
            sharded.add_trajectory(t)
        assert len(sharded) == 16

        full = TrajectoryDataset(small_graph)
        for t in trips[:16]:
            full.add(t)
        rebuilt = SubtrajectorySearch(full, edr_cost)
        query = list(trips[12].path[:6])
        assert keys(sharded.query(query, tau_ratio=0.25)) == keys(
            rebuilt.query(query, tau_ratio=0.25)
        )

    def test_global_ids_stay_dense(self, small_graph, edr_cost, trips):
        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        ds.add(trips[1])
        sharded = PartitionedSubtrajectorySearch(ds, edr_cost, num_shards=2)
        assert sharded.add_trajectory(trips[2]) == 2
        assert sharded.add_trajectory(trips[3]) == 3
        assert len(sharded) == 4

    def test_failed_insert_rolls_back_id_reservation(
        self, small_graph, edr_cost, trips
    ):
        from repro.trajectory.model import Trajectory

        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        ds.add(trips[1])
        sharded = PartitionedSubtrajectorySearch(ds, edr_cost, num_shards=2)
        with pytest.raises(Exception):
            sharded.add_trajectory(Trajectory([0, 0]), validate=True)
        assert len(sharded) == 2
        assert sharded.add_trajectory(trips[2]) == 2

    def test_edge_rep_bad_insert_leaves_engine_consistent(
        self, small_graph, surs_cost, trips
    ):
        from repro.trajectory.model import Trajectory

        ds = TrajectoryDataset(small_graph, "edge")
        ds.add(trips[0])
        ds.add(trips[1])
        sharded = PartitionedSubtrajectorySearch(ds, surs_cost, num_shards=2)
        # A non-walk whose edge conversion fails must not leave an orphan
        # in any shard dataset (id maps would misalign permanently).
        with pytest.raises(Exception):
            sharded.add_trajectory(Trajectory([0, 35, 1]))
        assert len(sharded) == 2
        gid = sharded.add_trajectory(trips[2])
        assert gid == 2
        query = list(ds.symbols(0))[:4]
        result = sharded.query(query, tau_ratio=0.25)
        assert all(m.trajectory_id < 3 for m in result.matches)

    def test_sorted_index_insert_rejected_before_commit(
        self, small_graph, edr_cost, trips
    ):
        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        ds.add(trips[1])
        sharded = PartitionedSubtrajectorySearch(
            ds, edr_cost, num_shards=2, sort_by_departure=True
        )
        with pytest.raises(ValueError):
            sharded.add_trajectory(trips[2])
        # No orphan: shard datasets and id maps stay aligned.
        assert len(sharded) == 2
        for engine, ids in zip(sharded._engines, sharded._global_ids):
            assert len(engine.dataset) == len(ids)

    def test_concurrent_inserts_get_unique_ids(self, small_graph, edr_cost, trips):
        from concurrent.futures import ThreadPoolExecutor

        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        ds.add(trips[1])
        sharded = PartitionedSubtrajectorySearch(ds, edr_cost, num_shards=2)
        with ThreadPoolExecutor(max_workers=8) as pool:
            ids = list(pool.map(sharded.add_trajectory, trips[2:26]))
        assert sorted(ids) == list(range(2, 26))
        assert len(sharded) == 26
