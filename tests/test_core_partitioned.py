"""Partitioned engine: sharded search equals single-node search."""

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.temporal import TimeInterval
from repro.exceptions import QueryError
from repro.trajectory.dataset import TrajectoryDataset
from tests.conftest import sample_query


def keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


class TestConstruction:
    def test_invalid_shard_count(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            PartitionedSubtrajectorySearch(vertex_dataset, edr_cost, num_shards=0)

    def test_empty_dataset_rejected(self, small_graph, edr_cost):
        with pytest.raises(QueryError):
            PartitionedSubtrajectorySearch(
                TrajectoryDataset(small_graph), edr_cost
            )

    def test_shards_capped_by_dataset_size(self, small_graph, edr_cost, trips):
        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        ds.add(trips[1])
        p = PartitionedSubtrajectorySearch(ds, edr_cost, num_shards=16)
        assert p.num_shards == 2


class TestExactness:
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_matches_single_node(self, vertex_dataset, edr_cost, rng, num_shards):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=num_shards
        )
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 6)
            a = single.query(query, tau_ratio=0.25)
            b = sharded.query(query, tau_ratio=0.25)
            assert keys(a) == keys(b)
            assert a.tau == b.tau

    def test_distances_preserved(self, vertex_dataset, edr_cost, rng):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3
        )
        query = sample_query(vertex_dataset, rng, 6)
        a = single.query(query, tau_ratio=0.25)
        b = sharded.query(query, tau_ratio=0.25)
        for ma, mb in zip(a.matches, b.matches):
            assert ma.distance == pytest.approx(mb.distance)

    def test_temporal_constraints_pass_through(self, vertex_dataset, edr_cost, rng):
        times = sorted(
            vertex_dataset[t].start_time for t in range(len(vertex_dataset))
        )
        interval = TimeInterval(times[0], times[len(times) // 2])
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=4
        )
        query = sample_query(vertex_dataset, rng, 6)
        a = single.query(query, tau_ratio=0.25, time_interval=interval)
        b = sharded.query(query, tau_ratio=0.25, time_interval=interval)
        assert keys(a) == keys(b)

    def test_engine_options_forwarded(self, vertex_dataset, edr_cost, rng):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=3,
            verification="sw",
            selector="prefix",
        )
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        assert keys(sharded.query(query, tau_ratio=0.25)) == keys(
            single.query(query, tau_ratio=0.25)
        )

    def test_stats_aggregate_over_shards(self, vertex_dataset, edr_cost, rng):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3
        )
        query = sample_query(vertex_dataset, rng, 6)
        result = sharded.query(query, tau_ratio=0.25)
        assert result.num_candidates >= 0
        assert result.verification.sw_columns > 0
