"""Match and MatchSet semantics."""

from repro.core.results import Match, MatchSet


class TestMatch:
    def test_length(self):
        assert Match(0, 2, 5, 1.0).length == 4
        assert Match(0, 3, 3, 0.0).length == 1

    def test_ordering(self):
        a = Match(0, 1, 2, 9.0)
        b = Match(1, 0, 0, 0.0)
        assert a < b  # ordered by trajectory id first


class TestMatchSet:
    def test_deduplicates(self):
        ms = MatchSet()
        ms.add(1, 2, 3, 5.0)
        ms.add(1, 2, 3, 5.0)
        assert len(ms) == 1

    def test_keeps_minimum_distance(self):
        ms = MatchSet()
        ms.add(1, 2, 3, 5.0)
        ms.add(1, 2, 3, 2.0)
        ms.add(1, 2, 3, 7.0)
        assert ms.to_list()[0].distance == 2.0

    def test_contains(self):
        ms = MatchSet()
        ms.add(1, 2, 3, 5.0)
        assert (1, 2, 3) in ms
        assert (1, 2, 4) not in ms

    def test_sorted_output(self):
        ms = MatchSet()
        ms.add(2, 0, 1, 1.0)
        ms.add(0, 5, 6, 1.0)
        ms.add(0, 1, 2, 1.0)
        keys = [(m.trajectory_id, m.start, m.end) for m in ms.to_list()]
        assert keys == sorted(keys)
        assert ms.keys() == keys

    def test_iteration(self):
        ms = MatchSet()
        ms.add(0, 0, 0, 0.0)
        assert [m.trajectory_id for m in ms] == [0]
