"""Temporal constraints: TF pruning == postprocessing (§4.3)."""

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.core.results import Match
from repro.core.temporal import TimeInterval, filter_candidates, match_satisfies
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory
from tests.conftest import sample_query


class TestTimeInterval:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(5.0, 4.0)

    def test_overlaps(self):
        a = TimeInterval(0, 10)
        assert a.overlaps(TimeInterval(5, 15))
        assert a.overlaps(TimeInterval(10, 20))  # touching counts
        assert not a.overlaps(TimeInterval(11, 20))

    def test_contains(self):
        a = TimeInterval(0, 10)
        assert a.contains(TimeInterval(2, 8))
        assert a.contains(TimeInterval(0, 10))
        assert not a.contains(TimeInterval(-1, 5))


class TestMatchSatisfies:
    @pytest.fixture()
    def dataset(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2, 3], timestamps=[0.0, 10.0, 20.0, 30.0]))
        return ds

    def test_overlap_mode(self, dataset):
        m = Match(0, 1, 2, 0.0)  # spans [10, 20]
        assert match_satisfies(dataset, m, TimeInterval(15, 40), "overlap")
        assert not match_satisfies(dataset, m, TimeInterval(21, 40), "overlap")

    def test_within_mode(self, dataset):
        m = Match(0, 1, 2, 0.0)
        assert match_satisfies(dataset, m, TimeInterval(5, 25), "within")
        assert not match_satisfies(dataset, m, TimeInterval(15, 40), "within")

    def test_edge_representation_spans_extra_vertex(self, line_graph):
        ds = TrajectoryDataset(line_graph, "edge")
        ds.add(Trajectory([0, 1, 2, 3], timestamps=[0.0, 10.0, 20.0, 30.0]))
        m = Match(0, 1, 1, 0.0)  # edge 1->2 spans vertices 1..2 => [10, 20]
        assert match_satisfies(ds, m, TimeInterval(19, 40), "overlap")
        assert not match_satisfies(ds, m, TimeInterval(21, 40), "overlap")


class TestFilterCandidates:
    def test_prunes_disjoint_trajectories(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1], timestamps=[0.0, 5.0]))
        ds.add(Trajectory([1, 2], timestamps=[100.0, 110.0]))
        cands = [(0, 0, 0), (0, 1, 0), (1, 0, 0)]
        kept = filter_candidates(ds, cands, TimeInterval(0, 50))
        assert kept == [(0, 0, 0), (0, 1, 0)]

    def test_keeps_overlapping(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1], timestamps=[40.0, 60.0]))
        kept = filter_candidates(ds, [(0, 0, 0)], TimeInterval(0, 50))
        assert kept == [(0, 0, 0)]


class TestEngineTemporal:
    def _interval_for(self, dataset, fraction):
        times = [dataset[t].start_time for t in range(len(dataset))]
        times.sort()
        hi = times[max(0, int(len(times) * fraction) - 1)]
        return TimeInterval(min(times), hi)

    @pytest.mark.parametrize("fraction", [0.1, 0.5])
    @pytest.mark.parametrize("mode", ["overlap", "within"])
    def test_tf_equals_postprocessing(
        self, vertex_dataset, edr_cost, rng, fraction, mode
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        interval = self._interval_for(vertex_dataset, fraction)
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 6)
            with_tf = engine.query(
                query,
                tau_ratio=0.25,
                time_interval=interval,
                temporal_filter=True,
                temporal_mode=mode,
            )
            without_tf = engine.query(
                query,
                tau_ratio=0.25,
                time_interval=interval,
                temporal_filter=False,
                temporal_mode=mode,
            )
            assert with_tf.matches == without_tf.matches
            assert with_tf.num_candidates <= without_tf.num_candidates

    def test_temporal_results_are_subset(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        interval = self._interval_for(vertex_dataset, 0.3)
        query = sample_query(vertex_dataset, rng, 6)
        constrained = engine.query(query, tau_ratio=0.25, time_interval=interval)
        unconstrained = engine.query(query, tau_ratio=0.25)
        keys = lambda r: {(m.trajectory_id, m.start, m.end) for m in r.matches}  # noqa: E731
        assert keys(constrained) <= keys(unconstrained)
        for m in constrained.matches:
            assert match_satisfies(vertex_dataset, m, interval, "overlap")

    def test_sorted_index_engine_same_results(self, vertex_dataset, edr_cost, rng):
        plain = SubtrajectorySearch(vertex_dataset, edr_cost)
        sorted_engine = SubtrajectorySearch(
            vertex_dataset, edr_cost, sort_by_departure=True
        )
        interval = self._interval_for(vertex_dataset, 0.4)
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 6)
            a = plain.query(query, tau_ratio=0.25, time_interval=interval)
            b = sorted_engine.query(query, tau_ratio=0.25, time_interval=interval)
            assert a.matches == b.matches
            assert b.num_candidates <= a.num_candidates
