"""Top-k subtrajectory search: exactness via threshold doubling."""

import pytest

from repro.core.engine import SubtrajectorySearch, topk_signature
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.results import Match
from repro.core.topk import TopKResult, topk_search
from repro.distance.smith_waterman import best_match
from repro.exceptions import QueryCancelledError, QueryError
from repro.trajectory.dataset import TrajectoryDataset
from tests.conftest import sample_query


def brute_topk(dataset, query, costs, k):
    scored = []
    for tid in range(len(dataset)):
        s, t, d = best_match(dataset.symbols(tid), query, costs)
        if t >= s:
            scored.append((d, tid))
    scored.sort()
    return scored[:k]


class TestTopK:
    def test_invalid_parameters(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        with pytest.raises(QueryError):
            topk_search(engine, [1, 2], 0)
        with pytest.raises(QueryError):
            topk_search(engine, [1, 2], 3, growth=1.0)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_distances_match_brute_force(self, vertex_dataset, edr_cost, rng, k):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        for _ in range(2):
            query = sample_query(vertex_dataset, rng, 6)
            got = topk_search(engine, query, k)
            want = brute_topk(vertex_dataset, query, edr_cost, k)
            assert len(got) == len(want)
            for m, (d, _) in zip(got, want):
                assert m.distance == pytest.approx(d)

    def test_results_sorted_and_unique_trajectories(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        got = topk_search(engine, query, 8)
        dists = [m.distance for m in got]
        assert dists == sorted(dists)
        ids = [m.trajectory_id for m in got]
        assert len(ids) == len(set(ids))

    def test_k_larger_than_dataset(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 5)
        got = topk_search(engine, query, 10_000)
        assert len(got) <= len(vertex_dataset)

    def test_exact_occurrence_ranks_first(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        got = topk_search(engine, query, 1)
        assert got[0].distance == 0.0  # the trajectory the query came from

    def test_surs_edge_representation(self, edge_dataset, surs_cost, rng):
        engine = SubtrajectorySearch(edge_dataset, surs_cost)
        query = sample_query(edge_dataset, rng, 5)
        got = topk_search(engine, query, 5)
        want = brute_topk(edge_dataset, query, surs_cost, 5)
        for m, (d, _) in zip(got, want):
            assert m.distance == pytest.approx(d)

    def test_result_carries_provenance(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        got = topk_search(engine, query, 4)
        assert isinstance(got, TopKResult)
        assert got.k == 4
        assert got.tau_rounds >= 1
        assert got.tau_final > 0
        assert got.complete and got.degraded_shards == ()
        assert got.total_seconds >= 0
        # Sequence protocol: old List[Match] call sites keep working.
        assert list(got) == got.matches
        assert got[0] == got.matches[0]
        assert len(got) == len(got.matches)

    def test_unsupported_engine_raises_typed_error(self):
        class NotAnEngine:
            pass

        with pytest.raises(QueryError, match="does not support top-k"):
            topk_search(NotAnEngine(), [1, 2, 3], 5)

    def test_partitioned_public_accessors(self, vertex_dataset, edr_cost):
        with PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3, backend="serial"
        ) as part:
            assert part.costs is edr_cost
            view = part.dataset
            assert len(view) == len(vertex_dataset)
            for tid in range(len(vertex_dataset)):
                assert list(view.symbols(tid)) == list(
                    vertex_dataset.symbols(tid)
                )

    def test_partitioned_matches_single_engine(
        self, vertex_dataset, edr_cost, rng
    ):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        with PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=4, backend="serial"
        ) as part:
            for _ in range(3):
                query = sample_query(vertex_dataset, rng, 6)
                assert list(part.topk(query, 5)) == list(single.topk(query, 5))


class TestTiesAtK:
    def test_duplicate_trajectories_surface_ties(
        self, small_graph, vertex_dataset, edr_cost
    ):
        ds = TrajectoryDataset(small_graph, "vertex")
        trip = vertex_dataset[0]
        ds.extend([trip, trip, vertex_dataset[1]])
        engine = SubtrajectorySearch(ds, edr_cost)
        query = list(ds.symbols(0))[:6]
        got = topk_search(engine, query, 1)
        # Both copies match at distance 0; the cut at k=1 drops one tie.
        assert got[0].distance == 0.0
        assert got.ties_at_k == 1

    def test_no_ties_reported_on_strict_boundary(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        got = topk_search(engine, query, len(vertex_dataset))
        # k covers the whole ranking: nothing is cut.
        assert got.ties_at_k == 0

    def test_at_k_truncation_recomputes_ties(self):
        matches = [
            Match(0, 0, 2, 0.0),
            Match(1, 0, 2, 1.0),
            Match(2, 0, 2, 1.0),
            Match(3, 0, 2, 1.0),
        ]
        full = TopKResult(matches=matches, k=4, ties_at_k=0, tau_rounds=1)
        cut = full.at_k(2)
        assert cut.k == 2
        assert [m.trajectory_id for m in cut] == [0, 1]
        assert cut.ties_at_k == 2  # trajectories 2 and 3 tie at distance 1.0
        assert full.ties_at_k == 0  # original untouched

    def test_at_k_propagates_stored_ties_on_equal_boundary(self):
        # Computed at k=2 with one dropped tie at distance 1.0; re-cutting
        # to the same boundary distance must count the stored tie too.
        stored = TopKResult(
            matches=[Match(0, 0, 2, 1.0), Match(1, 0, 2, 1.0)],
            k=2,
            ties_at_k=1,
            tau_rounds=1,
        )
        cut = stored.at_k(1)
        assert cut.ties_at_k == 2  # trajectory 1 plus the one k=2 dropped

    def test_at_k_refuses_deeper_requests(self):
        stored = TopKResult(
            matches=[Match(0, 0, 2, 0.5), Match(1, 0, 2, 1.0)],
            k=2,
            tau_rounds=1,
        )
        assert not stored.covers(3)
        with pytest.raises(QueryError):
            stored.at_k(3)
        # A full ranking (fewer matches than k) answers any depth.
        full = TopKResult(
            matches=[Match(0, 0, 2, 0.5)], k=5, tau_rounds=1
        )
        assert full.covers(100)
        assert full.at_k(100).k == 100


class TestSweepCancellation:
    def test_expired_deadline_stops_within_one_trajectory(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        swept = {"symbols": 0}

        class CountingDataset:
            def __len__(self):
                return len(vertex_dataset)

            def symbols(self, tid):
                swept["symbols"] += 1
                return vertex_dataset.symbols(tid)

        class ProxyEngine:
            costs = edr_cost
            dataset = CountingDataset()

            @staticmethod
            def query(query, **kwargs):
                kwargs.pop("trace", None)
                return engine.query(query, **kwargs)

        class TripsAfterFirstSweptTrajectory:
            # Duck-typed token (see repro.core.cancellation): reads as
            # expired once the sweep has scanned one trajectory.
            @staticmethod
            def cancelled():
                return swept["symbols"] >= 1

        # A near-zero first tau plus a huge growth factor exhausts the
        # threshold expansion after one probe, forcing the sweep with
        # nearly every trajectory unseen.
        with pytest.raises(QueryCancelledError):
            topk_search(
                ProxyEngine(),
                query,
                len(vertex_dataset) + 5,
                initial_tau_ratio=1e-9,
                growth=1e9,
                cancel=TripsAfterFirstSweptTrajectory(),
            )
        # The O(|P||Q|) scan in flight finished, but no further
        # trajectory was started after expiry.
        assert swept["symbols"] == 1


class TestTopKSignature:
    def test_k_independent(self, edr_cost):
        assert topk_signature([1, 2, 3], edr_cost) == topk_signature(
            [1, 2, 3], edr_cost
        )
        assert topk_signature([1, 2, 3], edr_cost) != topk_signature(
            [1, 2, 4], edr_cost
        )
        sig = topk_signature([1, 2, 3], edr_cost)
        assert sig[0] == "topk1"
        # No threshold or k component: depth reuse happens in the cache.
        assert len(sig) == 3
