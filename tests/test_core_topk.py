"""Top-k subtrajectory search: exactness via threshold doubling."""

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.core.topk import topk_search
from repro.distance.smith_waterman import best_match
from repro.exceptions import QueryError
from tests.conftest import sample_query


def brute_topk(dataset, query, costs, k):
    scored = []
    for tid in range(len(dataset)):
        s, t, d = best_match(dataset.symbols(tid), query, costs)
        if t >= s:
            scored.append((d, tid))
    scored.sort()
    return scored[:k]


class TestTopK:
    def test_invalid_parameters(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        with pytest.raises(QueryError):
            topk_search(engine, [1, 2], 0)
        with pytest.raises(QueryError):
            topk_search(engine, [1, 2], 3, growth=1.0)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_distances_match_brute_force(self, vertex_dataset, edr_cost, rng, k):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        for _ in range(2):
            query = sample_query(vertex_dataset, rng, 6)
            got = topk_search(engine, query, k)
            want = brute_topk(vertex_dataset, query, edr_cost, k)
            assert len(got) == len(want)
            for m, (d, _) in zip(got, want):
                assert m.distance == pytest.approx(d)

    def test_results_sorted_and_unique_trajectories(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        got = topk_search(engine, query, 8)
        dists = [m.distance for m in got]
        assert dists == sorted(dists)
        ids = [m.trajectory_id for m in got]
        assert len(ids) == len(set(ids))

    def test_k_larger_than_dataset(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 5)
        got = topk_search(engine, query, 10_000)
        assert len(got) <= len(vertex_dataset)

    def test_exact_occurrence_ranks_first(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        got = topk_search(engine, query, 1)
        assert got[0].distance == 0.0  # the trajectory the query came from

    def test_surs_edge_representation(self, edge_dataset, surs_cost, rng):
        engine = SubtrajectorySearch(edge_dataset, surs_cost)
        query = sample_query(edge_dataset, rng, 5)
        got = topk_search(engine, query, 5)
        want = brute_topk(edge_dataset, query, surs_cost, 5)
        for m, (d, _) in zip(got, want):
            assert m.distance == pytest.approx(d)
