"""Verification trie data structure (per-node and arena-backed layouts)."""

import numpy as np
import pytest

from repro.core.trie import LevelArena, TrieNode, VerificationTrie


class TestTrieNode:
    def test_column_min_cached(self):
        node = TrieNode([3.0, 1.0, 2.0])
        assert node.column_min == 1.0

    def test_find_and_create_child(self):
        node = TrieNode([0.0])
        assert node.find_child(5) is None
        child = node.create_child(5, [1.0])
        assert node.find_child(5) is child
        assert child.column == [1.0]

    def test_children_independent(self):
        node = TrieNode([0.0])
        a = node.create_child(1, [1.0])
        b = node.create_child(2, [2.0])
        assert node.find_child(1) is a
        assert node.find_child(2) is b


class TestVerificationTrie:
    def test_root_column(self):
        trie = VerificationTrie([0.0, 1.0, 2.0])
        assert trie.root.column == [0.0, 1.0, 2.0]

    def test_node_count(self):
        trie = VerificationTrie([0.0])
        assert trie.node_count() == 1
        a = trie.root.create_child(1, [1.0])
        a.create_child(2, [2.0])
        trie.root.create_child(3, [3.0])
        assert trie.node_count() == 4


class TestLevelArena:
    def test_reserve_contiguous(self):
        arena = LevelArena(4, capacity=2)
        assert arena.reserve(2) == 0
        assert arena.reserve(3) == 2  # forces growth, slots stay dense
        assert arena.used == 5
        assert arena.matrix.shape[1] == 4

    def test_growth_preserves_rows(self):
        arena = LevelArena(3, capacity=1)
        first = arena.reserve(1)
        arena.matrix[first] = [1.0, 2.0, 3.0]
        before = arena.allocations
        arena.reserve(8)  # grows past capacity
        assert arena.allocations > before
        assert arena.matrix[first].tolist() == [1.0, 2.0, 3.0]

    def test_growth_is_geometric(self):
        arena = LevelArena(2, capacity=2)
        for _ in range(100):
            arena.reserve(1)
        # 100 rows, doubling from 2: ~6 reallocations, not ~50.
        assert arena.allocations <= 8


class TestArenaTrie:
    def test_arena_nodes_hold_slots_not_columns(self):
        root_column = np.asarray([0.0, 1.0, 2.0])
        trie = VerificationTrie(root_column, arena=True)
        arena = trie.level(1)
        slot = arena.reserve(1)
        arena.matrix[slot] = [0.5, 1.5, 2.5]
        child = TrieNode(None, 0.5, 2.5, slot)
        trie.root.children[7] = child
        assert child.column is None
        assert child.slot == slot
        assert trie.column(child, 1).tolist() == [0.5, 1.5, 2.5]
        assert trie.column(trie.root, 0) is root_column
        assert trie.node_count() == 2
        assert trie.level_count() == 1
        assert trie.allocations >= 1

    def test_levels_created_lazily_and_share_width(self):
        trie = VerificationTrie(np.zeros(5), arena=True)
        assert trie.level_count() == 0
        level3 = trie.level(3)
        assert trie.level_count() == 3
        assert level3.matrix.shape[1] == 5
        assert trie.level(3) is level3  # stable identity

    def test_arena_node_requires_explicit_scalars(self):
        with pytest.raises(ValueError):
            TrieNode(None)  # no column to derive min/last from
