"""Verification trie data structure (per-node and slot-native layouts)."""

import numpy as np
import pytest

from repro.core.trie import TrieCache, TrieCacheEntry, TrieNode, VerificationTrie


class TestTrieNode:
    def test_column_min_cached(self):
        node = TrieNode([3.0, 1.0, 2.0])
        assert node.column_min == 1.0

    def test_find_and_create_child(self):
        node = TrieNode([0.0])
        assert node.find_child(5) is None
        child = node.create_child(5, [1.0])
        assert node.find_child(5) is child
        assert child.column == [1.0]

    def test_children_independent(self):
        node = TrieNode([0.0])
        a = node.create_child(1, [1.0])
        b = node.create_child(2, [2.0])
        assert node.find_child(1) is a
        assert node.find_child(2) is b


class TestVerificationTrie:
    def test_root_column(self):
        trie = VerificationTrie([0.0, 1.0, 2.0])
        assert trie.root.column == [0.0, 1.0, 2.0]

    def test_node_count(self):
        trie = VerificationTrie([0.0])
        assert trie.node_count() == 1
        a = trie.root.create_child(1, [1.0])
        a.create_child(2, [2.0])
        trie.root.create_child(3, [3.0])
        assert trie.node_count() == 4


class TestArenaTrie:
    """The slot-native layout: one matrix, one edges dict, scalar vectors."""

    def test_root_lives_at_slot_zero(self):
        trie = VerificationTrie(np.asarray([0.0, 1.0, 2.0]), arena=True)
        assert trie.root is None
        assert trie.used == 1
        assert trie.row(0).tolist() == [0.0, 1.0, 2.0]
        assert trie.mins_list == [0.0]
        assert trie.lasts_list == [2.0]
        assert trie.mins[0] == 0.0 and trie.lasts[0] == 2.0
        assert trie.node_count() == 1

    def test_reserve_contiguous_and_growth_preserves_rows(self):
        trie = VerificationTrie(np.asarray([1.0, 2.0, 3.0]), arena=True)
        with trie.lock:
            first = trie.reserve(2)
        assert first == 1  # root occupies slot 0
        trie.matrix[first] = [4.0, 5.0, 6.0]
        before = trie.allocations
        with trie.lock:
            grown = trie.reserve(200)  # forces growth, slots stay dense
        assert grown == 3
        assert trie.used == 203
        assert trie.allocations > before
        assert trie.matrix[first].tolist() == [4.0, 5.0, 6.0]
        assert trie.row(0).tolist() == [1.0, 2.0, 3.0]
        assert trie.mins.shape == trie.lasts.shape == (trie.matrix.shape[0],)

    def test_growth_is_geometric(self):
        trie = VerificationTrie(np.zeros(2), arena=True)
        for _ in range(300):
            with trie.lock:
                trie.reserve(1)
        # 300 rows, doubling from 32: ~4 reallocation rounds, not ~300.
        assert trie.allocations <= 3 + 4 * 3

    def test_edges_address_columns(self):
        trie = VerificationTrie(np.asarray([0.0, 1.0]), arena=True)
        with trie.lock:
            slot = trie.reserve(1)
            trie.matrix[slot] = [0.5, 1.5]
            trie.mins[slot] = 0.5
            trie.lasts[slot] = 1.5
            trie.mins_list.append(0.5)
            trie.lasts_list.append(1.5)
            trie.edges[(0, 7)] = slot
        assert trie.edges.get((0, 7)) == slot
        assert trie.edges.get((0, 8)) is None
        assert trie.node_count() == 2

    def test_nbytes_tracks_growth(self):
        trie = VerificationTrie(np.zeros(4), arena=True)
        before = trie.nbytes
        assert before > 0
        with trie.lock:
            trie.reserve(500)
        assert trie.nbytes > before
        # Non-arena tries pin nothing accountable.
        assert VerificationTrie([0.0]).nbytes == 0


class TestTrieCacheEntry:
    def test_first_touch_converges_on_one_instance(self):
        entry = TrieCacheEntry()
        built = []

        def factory():
            trie = VerificationTrie(np.zeros(3), arena=True)
            built.append(trie)
            return trie

        a = entry.trie((0, "f"), factory)
        b = entry.trie((0, "f"), factory)
        c = entry.trie((0, "b"), factory)
        assert a is b
        assert a is not c
        assert len(built) == 2
        assert entry.nbytes == a.nbytes + c.nbytes
        assert entry.column_count() == 2  # two roots


class TestTrieCache:
    def _entry_with_bytes(self, cache, key, rows):
        entry = cache.entry(key)
        trie = entry.trie((0, "f"), lambda: VerificationTrie(np.zeros(8), arena=True))
        with trie.lock:
            trie.reserve(rows)
        return entry

    def test_lru_entry_capacity(self):
        cache = TrieCache(2)
        cache.entry("a")
        cache.entry("b")
        cache.entry("a")  # refresh: b is now LRU
        cache.entry("c")  # evicts b
        assert cache.keys() == ["a", "c"]
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 3

    def test_zero_capacity_disables(self):
        cache = TrieCache(0)
        assert cache.entry("a") is None
        assert cache.entry("a") is None
        stats = cache.stats()
        assert stats["hits"] == stats["misses"] == stats["size"] == 0

    def test_byte_budget_evicts_lru_first(self):
        cache = TrieCache(16, max_bytes=150_000)
        self._entry_with_bytes(cache, "a", 400)
        self._entry_with_bytes(cache, "b", 400)
        assert cache.reconcile() <= 150_000
        # One ~100KB entry fits; two do not. "a" (LRU) must have gone.
        assert cache.keys() == ["b"]
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] <= 150_000

    def test_reconcile_accounts_growth_after_insertion(self):
        cache = TrieCache(16, max_bytes=50_000)
        entry = self._entry_with_bytes(cache, "a", 4)
        assert cache.reconcile() < 50_000
        assert cache.keys() == ["a"]
        # The cached entry keeps growing while cached — the budget must
        # catch it at the next reconcile, even as the only entry.
        trie = entry.tries[(0, "f")]
        with trie.lock:
            trie.reserve(4000)
        cache.reconcile()
        assert cache.keys() == []
        assert cache.stats()["bytes"] == 0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            TrieCache(-1)
        with pytest.raises(ValueError):
            TrieCache(4, max_bytes=-1)
