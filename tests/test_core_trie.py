"""Verification trie data structure."""

from repro.core.trie import TrieNode, VerificationTrie


class TestTrieNode:
    def test_column_min_cached(self):
        node = TrieNode([3.0, 1.0, 2.0])
        assert node.column_min == 1.0

    def test_find_and_create_child(self):
        node = TrieNode([0.0])
        assert node.find_child(5) is None
        child = node.create_child(5, [1.0])
        assert node.find_child(5) is child
        assert child.column == [1.0]

    def test_children_independent(self):
        node = TrieNode([0.0])
        a = node.create_child(1, [1.0])
        b = node.create_child(2, [2.0])
        assert node.find_child(1) is a
        assert node.find_child(2) is b


class TestVerificationTrie:
    def test_root_column(self):
        trie = VerificationTrie([0.0, 1.0, 2.0])
        assert trie.root.column == [0.0, 1.0, 2.0]

    def test_node_count(self):
        trie = VerificationTrie([0.0])
        assert trie.node_count() == 1
        a = trie.root.create_child(1, [1.0])
        a.create_child(2, [2.0])
        trie.root.create_child(3, [3.0])
        assert trie.node_count() == 4
