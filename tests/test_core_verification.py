"""Verification (Algorithms 3-6): correctness, caching, early termination."""

import pytest

from repro.core.results import MatchSet
from repro.core.verification import Verifier
from repro.distance.costs import LevenshteinCost
from repro.distance.smith_waterman import all_matches
from repro.distance.wed import wed

lev = LevenshteinCost()


def make_verifier(data_strings, query, tau, **kwargs):
    return Verifier(lambda tid: data_strings[tid], query, lev, tau, **kwargs)


def candidates_for(data_strings, query):
    """All (id, j, iq) anchors with exact symbol hits (Lev has B(q)={q})."""
    out = []
    for tid, data in enumerate(data_strings):
        for j, sym in enumerate(data):
            for iq, q in enumerate(query):
                if sym == q:
                    out.append((tid, j, iq))
    return out


def oracle(data_strings, query, tau):
    want = set()
    for tid, data in enumerate(data_strings):
        for s, t, _ in all_matches(data, query, lev, tau):
            want.add((tid, s, t))
    return want


class TestVerifyCandidate:
    def test_single_exact_match(self):
        data = [[9, 1, 2, 3, 9]]
        query = [1, 2, 3]
        v = make_verifier(data, query, 1.0)
        ms = MatchSet()
        v.verify_all(candidates_for(data, query), ms)
        assert {(m.trajectory_id, m.start, m.end) for m in ms} == {(0, 1, 3)}
        m = ms.to_list()[0]
        assert m.distance == 0.0

    def test_distances_converge_to_exact_wed(self):
        data = [[1, 2, 4, 3]]
        query = [1, 2, 3]
        tau = 2.0
        v = make_verifier(data, query, tau)
        ms = MatchSet()
        v.verify_all(candidates_for(data, query), ms)
        for m in ms:
            assert m.distance == wed(data[0][m.start : m.end + 1], query, lev)

    def test_anchor_over_budget_skipped(self):
        # sub(q, b) >= tau: the candidate cannot produce matches.
        data = [[5]]
        v = make_verifier(data, [5], 0.5)
        ms = MatchSet()
        v.verify_candidate((0, 0, 0), ms)
        assert len(ms) == 1  # sub(5,5)=0 < 0.5: exact single-symbol match

    def test_all_matching_spans_found(self):
        data = [[1, 1, 1]]
        query = [1]
        v = make_verifier(data, query, 2.0)
        ms = MatchSet()
        v.verify_all(candidates_for(data, query), ms)
        assert oracle(data, query, 2.0) == {
            (m.trajectory_id, m.start, m.end) for m in ms
        }


class TestEquivalences:
    """Trie caching and early termination must not change results."""

    @pytest.fixture()
    def workload(self, vertex_dataset, rng):
        data = [list(vertex_dataset.symbols(t)) for t in range(len(vertex_dataset))]
        queries = []
        for _ in range(4):
            base = data[rng.randrange(len(data))]
            if len(base) < 7:
                continue
            s = rng.randrange(len(base) - 6)
            queries.append(base[s : s + 6])
        return data, queries

    @pytest.mark.parametrize("tau", [1.0, 2.0, 3.0])
    def test_matches_oracle(self, workload, tau):
        data, queries = workload
        for query in queries:
            v = make_verifier(data, query, tau)
            ms = MatchSet()
            v.verify_all(candidates_for(data, query), ms)
            got = {(m.trajectory_id, m.start, m.end) for m in ms}
            assert got == oracle(data, query, tau)

    def test_trie_off_same_results(self, workload):
        data, queries = workload
        for query in queries:
            a, b = MatchSet(), MatchSet()
            cands = candidates_for(data, query)
            make_verifier(data, query, 2.0, use_trie=True).verify_all(cands, a)
            make_verifier(data, query, 2.0, use_trie=False).verify_all(cands, b)
            assert a.keys() == b.keys()

    def test_early_termination_off_same_results(self, workload):
        data, queries = workload
        for query in queries:
            a, b = MatchSet(), MatchSet()
            cands = candidates_for(data, query)
            make_verifier(data, query, 2.0, early_termination=True).verify_all(cands, a)
            make_verifier(data, query, 2.0, early_termination=False).verify_all(cands, b)
            assert a.keys() == b.keys()


class TestCounters:
    def test_trie_reduces_computed_columns(self):
        # Two trajectories sharing a long prefix around the anchor.
        shared = [1, 2, 3, 4, 5, 6]
        data = [shared + [7], shared + [8]]
        query = [2, 3, 4]
        cands = candidates_for(data, query)
        with_trie = make_verifier(data, query, 1.0, use_trie=True)
        without = make_verifier(data, query, 1.0, use_trie=False)
        a, b = MatchSet(), MatchSet()
        with_trie.verify_all(cands, a)
        without.verify_all(cands, b)
        assert with_trie.stats.computed_columns < without.stats.computed_columns
        assert with_trie.stats.visited_columns == without.stats.visited_columns
        assert a.keys() == b.keys()

    def test_early_termination_reduces_visits(self):
        data = [[1] + [9] * 30]
        query = [1, 2]
        cands = [(0, 0, 0)]
        pruned = make_verifier(data, query, 1.5, early_termination=True)
        full = make_verifier(data, query, 1.5, early_termination=False)
        a, b = MatchSet(), MatchSet()
        pruned.verify_all(cands, a)
        full.verify_all(cands, b)
        assert pruned.stats.visited_columns < full.stats.visited_columns
        assert a.keys() == b.keys()

    def test_rates_within_bounds(self, vertex_dataset, rng):
        data = [list(vertex_dataset.symbols(t)) for t in range(len(vertex_dataset))]
        base = max(data, key=len)
        query = base[:6]
        v = make_verifier(data, query, 2.0)
        ms = MatchSet()
        v.verify_all(candidates_for(data, query), ms)
        s = v.stats
        assert 0.0 <= s.unpruned_position_rate <= 1.0
        assert 0.0 <= s.cache_miss_rate <= 1.0
        assert s.total_unpruned_rate <= s.unpruned_position_rate + 1e-9

    def test_trie_node_count_grows(self):
        data = [[1, 2, 3]]
        query = [2]
        v = make_verifier(data, query, 2.0)
        ms = MatchSet()
        v.verify_all(candidates_for(data, query), ms)
        assert v.trie_node_count() >= 2


class TestDedupeAndGrouping:
    """verify_all dedupes exact (id, j, iq) repeats and reorders by anchor
    position — neither may change results or the column counters."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_exact_duplicates_verified_once(self, backend):
        data = [[9, 1, 2, 3, 9]]
        query = [1, 2, 3]
        cands = candidates_for(data, query)
        v = make_verifier(data, query, 2.0, dp_backend=backend)
        ms = MatchSet()
        v.verify_all(cands + cands + [cands[0]], ms)
        assert v.stats.duplicate_candidates == len(cands) + 1
        assert v.stats.candidates == len(cands)
        # Results identical to the duplicate-free run.
        clean = make_verifier(data, query, 2.0, dp_backend=backend)
        ref = MatchSet()
        clean.verify_all(cands, ref)
        assert ms.keys() == ref.keys()
        assert clean.stats.duplicate_candidates == 0
        assert v.stats.visited_columns == clean.stats.visited_columns
        assert v.stats.computed_columns == clean.stats.computed_columns

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_order_independent(self, backend, rng):
        data = [[1, 2, 3, 4, 5], [5, 4, 3, 2, 1], [2, 3, 2, 3, 2]]
        query = [2, 3, 4]
        cands = candidates_for(data, query)
        shuffled = list(cands)
        rng.shuffle(shuffled)
        a = make_verifier(data, query, 2.5, dp_backend=backend)
        b = make_verifier(data, query, 2.5, dp_backend=backend)
        ms_a, ms_b = MatchSet(), MatchSet()
        a.verify_all(cands, ms_a)
        b.verify_all(shuffled, ms_b)
        assert ms_a.keys() == ms_b.keys()
        assert a.stats == b.stats

    def test_shared_anchor_row_cached_across_iq(self):
        """Distinct iqs sharing (tid, j) reuse the cached substitution row
        for the anchor symbol — one row materialization, not one per iq."""
        data = [[7, 7, 7, 7]]
        query = [7, 8, 7]  # repeated query symbol: (tid, j) shared by iq 0 and 2
        v = make_verifier(data, query, 2.0, dp_backend="numpy")
        ms = MatchSet()
        v.verify_all(candidates_for(data, query), ms)
        # Only symbols 7 (anchor + data) ever need a row.
        assert v._matrix.cached_rows() == 1
