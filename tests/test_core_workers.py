"""Process-backed shard workers: exactness, replication, lifecycle."""

import multiprocessing as mp
import threading
import time

import pytest

from repro.core import workers as workers_module
from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.temporal import TimeInterval
from repro.core.workers import default_start_method
from repro.distance.costs import EDRCost
from repro.exceptions import QueryError, ServiceError, WorkerError
from repro.trajectory.dataset import TrajectoryDataset
from tests.conftest import sample_query


def keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


@pytest.fixture(scope="module")
def process_engine(vertex_dataset, edr_cost):
    engine = PartitionedSubtrajectorySearch(
        vertex_dataset, edr_cost, num_shards=2, backend="processes"
    )
    yield engine
    engine.close()


class TestConfiguration:
    def test_unknown_backend_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            PartitionedSubtrajectorySearch(
                vertex_dataset, edr_cost, backend="fibers"
            )

    @pytest.mark.parametrize("backend", ["serial", "processes"])
    def test_only_threads_backend_takes_max_workers(
        self, vertex_dataset, edr_cost, backend
    ):
        with pytest.raises(QueryError):
            PartitionedSubtrajectorySearch(
                vertex_dataset, edr_cost, backend=backend, max_workers=2
            )

    def test_backend_defaults_preserve_old_semantics(self, vertex_dataset, edr_cost):
        serial = PartitionedSubtrajectorySearch(vertex_dataset, edr_cost)
        threaded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, max_workers=2
        )
        try:
            assert serial.backend == "serial"
            assert threaded.backend == "threads"
        finally:
            serial.close()
            threaded.close()

    def test_default_start_method_is_valid(self):
        assert default_start_method() in mp.get_all_start_methods()

    def test_worker_engine_build_error_raises_at_construction(
        self, vertex_dataset, edr_cost
    ):
        # Readiness handshake: bad engine options fail in the constructor
        # with their real cause, exactly like the in-process backends.
        with pytest.raises(QueryError, match="dp_backend"):
            PartitionedSubtrajectorySearch(
                vertex_dataset,
                edr_cost,
                num_shards=2,
                backend="processes",
                dp_backend="typo",
            )


class TestExactness:
    def test_matches_single_node(self, process_engine, vertex_dataset, edr_cost, rng):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        assert process_engine.backend == "processes"
        for _ in range(3):
            query = sample_query(vertex_dataset, rng, 6)
            a = single.query(query, tau_ratio=0.25)
            b = process_engine.query(query, tau_ratio=0.25)
            assert keys(a) == keys(b)
            assert [m.distance for m in a.matches] == pytest.approx(
                [m.distance for m in b.matches]
            )
            assert a.tau == b.tau

    def test_temporal_constraints_cross_the_pipe(
        self, process_engine, vertex_dataset, edr_cost, rng
    ):
        times = sorted(
            vertex_dataset[t].start_time for t in range(len(vertex_dataset))
        )
        interval = TimeInterval(times[0], times[len(times) // 2])
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        a = single.query(query, tau_ratio=0.25, time_interval=interval)
        b = process_engine.query(query, tau_ratio=0.25, time_interval=interval)
        assert keys(a) == keys(b)

    def test_shard_callables_merge_equals_query(
        self, process_engine, vertex_dataset, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        calls = process_engine.shard_query_callables(query, tau_ratio=0.25)
        assert len(calls) == process_engine.num_shards
        merged = process_engine.merge_shard_results([call() for call in calls])
        assert keys(merged) == keys(process_engine.query(query, tau_ratio=0.25))

    def test_stats_aggregate_over_worker_shards(
        self, process_engine, vertex_dataset, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        result = process_engine.query(query, tau_ratio=0.25)
        assert result.verification.sw_columns > 0

    def test_spawn_start_method_ships_pickled_shards(
        self, vertex_dataset, edr_cost, rng
    ):
        # spawn exercises the full pickling path (fork merely inherits).
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=2,
            backend="processes",
            start_method="spawn",
        )
        try:
            single = SubtrajectorySearch(vertex_dataset, edr_cost)
            query = sample_query(vertex_dataset, rng, 6)
            assert keys(engine.query(query, tau_ratio=0.25)) == keys(
                single.query(query, tau_ratio=0.25)
            )
        finally:
            engine.close()


class TestReplication:
    def test_add_trajectory_matches_rebuilt(self, small_graph, edr_cost, trips):
        ds = TrajectoryDataset(small_graph)
        for t in trips[:10]:
            ds.add(t)
        with PartitionedSubtrajectorySearch(
            ds, edr_cost, num_shards=2, backend="processes"
        ) as sharded:
            for t in trips[10:16]:
                sharded.add_trajectory(t)
            assert len(sharded) == 16

            full = TrajectoryDataset(small_graph)
            for t in trips[:16]:
                full.add(t)
            rebuilt = SubtrajectorySearch(full, edr_cost)
            query = list(trips[12].path[:6])
            assert keys(sharded.query(query, tau_ratio=0.25)) == keys(
                rebuilt.query(query, tau_ratio=0.25)
            )

    def test_failed_insert_rolls_back_reservation(self, small_graph, edr_cost, trips):
        from repro.trajectory.model import Trajectory

        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        ds.add(trips[1])
        with PartitionedSubtrajectorySearch(
            ds, edr_cost, num_shards=2, backend="processes"
        ) as sharded:
            # The worker's engine rejects the non-walk; the parent must
            # roll back the reserved global id and stay usable.
            with pytest.raises(Exception):
                sharded.add_trajectory(Trajectory([0, 0]), validate=True)
            assert len(sharded) == 2
            assert sharded.add_trajectory(trips[2]) == 2
            assert len(sharded) == 3


class TestLifecycle:
    def test_workers_are_daemon_processes(self, process_engine):
        pool = process_engine._workers
        assert pool is not None
        assert all(w.daemon for w in pool._workers)
        assert all(pool.workers_alive())

    def test_pool_registered_for_atexit_cleanup(self, process_engine):
        assert process_engine._workers in workers_module._LIVE_POOLS

    def test_close_is_idempotent_and_query_after_close_raises(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, backend="processes"
        )
        pool = engine._workers
        engine.close()
        engine.close()  # second close is a no-op, not an error
        assert pool.closed
        assert not any(pool.workers_alive())
        assert pool not in workers_module._LIVE_POOLS
        with pytest.raises(QueryError):
            engine.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)
        # The pool itself reports closure as a worker failure.
        with pytest.raises(ServiceError):
            pool.query_all([0], {})

    def test_crashed_worker_surfaces_as_worker_error(
        self, vertex_dataset, edr_cost, rng
    ):
        # supervise=False pins the pre-supervision semantics: a dead
        # worker stays dead and the query fails loudly.
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, backend="processes",
            supervise=False,
        )
        try:
            engine._workers._workers[0]._process.terminate()
            engine._workers._workers[0]._process.join(5)
            with pytest.raises(WorkerError):
                engine.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)
        finally:
            engine.close()  # close after a crash must still succeed

    def test_crashed_worker_recovers_under_supervision(
        self, vertex_dataset, edr_cost, rng
    ):
        # The default (supervised) pool respawns the dead worker and
        # retries the query — the caller never sees the crash.
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, backend="processes"
        )
        try:
            query = sample_query(vertex_dataset, rng, 6)
            before = engine.query(query, tau_ratio=0.25)
            engine._workers._workers[0]._process.kill()
            engine._workers._workers[0]._process.join(5)
            after = engine.query(query, tau_ratio=0.25)
            assert keys(after) == keys(before)
            assert after.complete
            assert engine.restarts_total() == 1
        finally:
            engine.close()


class GatedEDRCost(EDRCost):
    """An EDRCost whose substitution rows block on a shared gate.

    Fork-inherited :class:`multiprocessing.Event` objects let the test
    freeze a query *inside* a worker's verification phase and release it
    later — the only reliable way to have a probe race a genuinely
    in-flight request."""

    name = "gated-edr"

    def _block(self):
        self.entered.set()
        if not self.gate.wait(timeout=60.0):
            raise RuntimeError("gate never released")

    def sub(self, a, b):
        self._block()
        return super().sub(a, b)

    def sub_row(self, p, seq):
        self._block()
        return super().sub_row(p, seq)

    def sub_row_array(self, p, seq):
        self._block()
        return super().sub_row_array(p, seq)


@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="gate events need fork inheritance",
)
class TestProbesDoNotQueueBehindQueries:
    """Observability probes must stay non-blocking (ISSUE 6, satellite 3).

    ``/healthz``, ``/stats``, and ``/metrics`` all poll worker cache
    stats; a probe that queues behind a long-running verification on the
    single-request-per-worker pipe would turn every slow query into an
    apparent outage."""

    def test_stats_probes_return_while_query_is_in_flight(
        self, small_graph, vertex_dataset, edr_cost, rng
    ):
        ctx = mp.get_context("fork")
        cost = GatedEDRCost(small_graph, epsilon=60.0)
        cost.gate = ctx.Event()
        cost.entered = ctx.Event()
        cost.gate.set()  # anything cost-touching at build time sails through
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, cost, num_shards=2, backend="processes",
            start_method="fork",
        )
        query = sample_query(vertex_dataset, rng, 6)
        results = []
        worker = threading.Thread(
            target=lambda: results.append(engine.query(query, tau_ratio=0.25)),
            daemon=True,
        )
        try:
            cost.gate.clear()
            worker.start()
            assert cost.entered.wait(timeout=30.0), "query never reached a worker"

            t0 = time.perf_counter()
            per_worker = engine._workers.cache_stats()
            obs = engine.observability_cache_stats()
            elapsed = time.perf_counter() - t0

            assert elapsed < 2.0, "probe queued behind the blocked query"
            # Busy workers report None / drop out of coverage, not stall.
            assert any(part is None for part in per_worker)
            assert obs["shards"] == 2
            assert obs["reporting"] < obs["shards"]
        finally:
            cost.gate.set()
            worker.join(timeout=60.0)
            engine.close()
        assert not worker.is_alive()

        # After release the answer is still exact.
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        assert results and keys(results[0]) == keys(
            single.query(query, tau_ratio=0.25)
        )
