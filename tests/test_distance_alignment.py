"""Alignment backtrace: script cost equals the DP value, ops are coherent."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.alignment import align, script_cost
from repro.distance.costs import LevenshteinCost
from repro.distance.wed import wed

lev = LevenshteinCost()

symbols = st.integers(min_value=0, max_value=4)
strings = st.lists(symbols, min_size=0, max_size=10)


class TestAlign:
    @given(strings, strings)
    @settings(max_examples=100, deadline=None)
    def test_total_cost_equals_wed(self, a, b):
        ops, total = align(a, b, lev)
        assert total == wed(a, b, lev)
        assert script_cost(ops) == pytest.approx(total)

    @given(strings, strings)
    @settings(max_examples=100, deadline=None)
    def test_ops_reconstruct_both_strings(self, a, b):
        ops, _ = align(a, b, lev)
        data_side = [op.data_symbol for op in ops if op.data_symbol is not None]
        query_side = [op.query_symbol for op in ops if op.query_symbol is not None]
        assert data_side == list(a)
        assert query_side == list(b)

    def test_identical_strings_all_matches(self):
        ops, total = align([1, 2, 3], [1, 2, 3], lev)
        assert total == 0
        assert all(op.kind == "match" for op in ops)

    def test_pure_insertion(self):
        ops, total = align([], [1, 2], lev)
        assert total == 2
        assert [op.kind for op in ops] == ["ins", "ins"]

    def test_pure_deletion(self):
        ops, total = align([1, 2], [], lev)
        assert total == 2
        assert [op.kind for op in ops] == ["del", "del"]

    def test_substitution_labeled(self):
        ops, total = align([1], [2], lev)
        assert total == 1
        assert len(ops) == 1 and ops[0].kind == "sub"

    def test_surs_alignment_example(self, surs_cost, small_graph):
        """Example 1: gaps carry the unshared edges."""
        a, b, c, d, e, f, g = range(7)
        ops, _ = align([b, e, f, g], [a, b, c, d, g], surs_cost)
        matched = [(op.data_symbol, op.query_symbol) for op in ops if op.kind == "match"]
        assert (b, b) in matched and (g, g) in matched
