"""Cost models: WED assumptions (§2.2.1), neighborhoods, filter costs."""

import math
import random

import pytest

from repro.distance.costs import (
    EDRCost,
    ERPCost,
    LevenshteinCost,
    NetEDRCost,
    NetERPCost,
    validate_cost_model,
)
from repro.exceptions import CostModelError
from repro.network.shortest_path import bidirectional_dijkstra
from repro.spatial.geometry import euclidean

ALL_MODELS = ["lev_cost", "edr_cost", "erp_cost", "netedr_cost", "neterp_cost", "surs_cost"]


@pytest.fixture()
def sample_symbols(small_graph, rng):
    return rng.sample(range(small_graph.num_vertices), 8)


@pytest.fixture()
def sample_edges(small_graph, rng):
    return rng.sample(range(small_graph.num_edges), 8)


class TestAssumptions:
    """Proposition 1: the assumptions hold for every shipped instance."""

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_validate_passes(self, model_name, request, sample_symbols, sample_edges):
        model = request.getfixturevalue(model_name)
        symbols = sample_edges if model.representation == "edge" else sample_symbols
        validate_cost_model(model, symbols)

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_identity_substitution_free(self, model_name, request, sample_symbols, sample_edges):
        model = request.getfixturevalue(model_name)
        symbols = sample_edges if model.representation == "edge" else sample_symbols
        for s in symbols:
            assert model.sub(s, s) == 0.0

    @pytest.mark.parametrize("model_name", ALL_MODELS)
    def test_sub_row_matches_scalar(self, model_name, request, sample_symbols, sample_edges):
        model = request.getfixturevalue(model_name)
        symbols = sample_edges if model.representation == "edge" else sample_symbols
        p = symbols[0]
        row = model.sub_row(p, symbols)
        assert row == pytest.approx([model.sub(p, s) for s in symbols])


class TestLevenshtein:
    def test_costs(self, lev_cost):
        assert lev_cost.sub(1, 1) == 0.0
        assert lev_cost.sub(1, 2) == 1.0
        assert lev_cost.ins(5) == 1.0
        assert lev_cost.delete(5) == 1.0

    def test_neighborhood_is_self(self, lev_cost):
        assert lev_cost.neighbors(7) == [7]

    def test_filter_cost_unit(self, lev_cost):
        assert lev_cost.filter_cost(3) == 1.0

    def test_representation_configurable(self):
        assert LevenshteinCost("edge").representation == "edge"


class TestEDR:
    def test_negative_epsilon_rejected(self, small_graph):
        with pytest.raises(CostModelError):
            EDRCost(small_graph, epsilon=-1.0)

    def test_sub_threshold(self, small_graph):
        edr = EDRCost(small_graph, epsilon=1e-9)
        assert edr.sub(0, 0) == 0.0
        assert edr.sub(0, 1) == 1.0

    def test_neighbors_are_epsilon_ball(self, small_graph, edr_cost):
        for q in (0, 10, 30):
            got = sorted(edr_cost.neighbors(q))
            want = sorted(
                v
                for v in range(small_graph.num_vertices)
                if euclidean(small_graph.coord(v), small_graph.coord(q))
                <= edr_cost.epsilon
            )
            assert got == want
            assert q in got

    def test_neighbors_consistent_with_sub(self, edr_cost, small_graph):
        q = 5
        neigh = set(edr_cost.neighbors(q))
        for v in range(small_graph.num_vertices):
            if v in neigh:
                assert edr_cost.sub(q, v) == 0.0
            else:
                assert edr_cost.sub(q, v) == 1.0

    def test_filter_cost(self, edr_cost):
        assert edr_cost.filter_cost(3) == 1.0


class TestERP:
    def test_default_reference_is_centroid(self, small_graph):
        erp = ERPCost(small_graph)
        n = small_graph.num_vertices
        cx = sum(small_graph.coord(v)[0] for v in range(n)) / n
        assert erp.reference[0] == pytest.approx(cx)

    def test_sub_is_euclidean(self, small_graph, erp_cost):
        assert erp_cost.sub(0, 1) == pytest.approx(
            euclidean(small_graph.coord(0), small_graph.coord(1))
        )

    def test_ins_is_distance_to_reference(self, small_graph):
        erp = ERPCost(small_graph, reference=(0.0, 0.0))
        assert erp.ins(3) == pytest.approx(euclidean(small_graph.coord(3), (0, 0)))

    def test_filter_cost_is_exact_min(self, small_graph, erp_cost):
        for q in (2, 17, 40):
            got = erp_cost.filter_cost(q)
            candidates = [erp_cost.ins(q)]
            for v in range(small_graph.num_vertices):
                d = erp_cost.sub(q, v)
                if d > erp_cost.eta:
                    candidates.append(d)
            assert got == pytest.approx(min(candidates))

    def test_triangle_inequality_of_sub(self, small_graph, erp_cost, rng):
        # ERP substitution cost is a metric (Euclidean distance).
        for _ in range(30):
            a, b, c = (rng.randrange(small_graph.num_vertices) for _ in range(3))
            assert erp_cost.sub(a, c) <= erp_cost.sub(a, b) + erp_cost.sub(b, c) + 1e-9

    def test_negative_eta_rejected(self, small_graph):
        with pytest.raises(CostModelError):
            ERPCost(small_graph, eta=-0.5)


class TestNetEDR:
    def test_default_epsilon_is_median_edge(self, small_graph, netedr_cost):
        assert netedr_cost.epsilon == pytest.approx(small_graph.median_edge_weight())

    def test_sub_uses_undirected_network_distance(self, small_graph, netedr_cost):
        und = small_graph.undirected()
        for a, b in [(0, 1), (5, 20), (3, 3)]:
            d = bidirectional_dijkstra(und, a, b)
            want = 0.0 if d <= netedr_cost.epsilon else 1.0
            assert netedr_cost.sub(a, b) == want

    def test_symmetric_despite_one_ways(self, small_graph, netedr_cost, rng):
        for _ in range(20):
            a = rng.randrange(small_graph.num_vertices)
            b = rng.randrange(small_graph.num_vertices)
            assert netedr_cost.sub(a, b) == netedr_cost.sub(b, a)

    def test_neighbors_within_network_epsilon(self, small_graph, netedr_cost):
        und = small_graph.undirected()
        q = 12
        got = set(netedr_cost.neighbors(q))
        for v in range(small_graph.num_vertices):
            inside = bidirectional_dijkstra(und, q, v) <= netedr_cost.epsilon
            assert (v in got) == inside

    def test_dijkstra_fallback_matches_hub_labeling(self, small_graph):
        a = NetEDRCost(small_graph, use_hub_labeling=True)
        b = NetEDRCost(small_graph, use_hub_labeling=False)
        rng = random.Random(9)
        for _ in range(15):
            u, v = rng.randrange(64), rng.randrange(64)
            assert a.network_distance(u, v) == pytest.approx(b.network_distance(u, v))


class TestNetERP:
    def test_invalid_g_del_rejected(self, small_graph):
        with pytest.raises(CostModelError):
            NetERPCost(small_graph, g_del=0.0)

    def test_ins_is_constant(self, neterp_cost):
        assert neterp_cost.ins(0) == neterp_cost.ins(63) == 250.0

    def test_filter_cost_bounded_by_deletion(self, neterp_cost, rng, small_graph):
        for _ in range(10):
            q = rng.randrange(small_graph.num_vertices)
            assert neterp_cost.filter_cost(q) <= neterp_cost.g_del + 1e-9

    def test_filter_cost_is_exact_min(self, small_graph, neterp_cost):
        for q in (1, 25, 50):
            candidates = [neterp_cost.g_del]
            for v in range(small_graph.num_vertices):
                d = neterp_cost.sub(q, v)
                if d > neterp_cost.eta and not math.isinf(d):
                    candidates.append(d)
            assert neterp_cost.filter_cost(q) == pytest.approx(min(candidates))

    def test_non_metric_is_tolerated(self, neterp_cost):
        # NetERP with constant del cost may violate the triangle inequality;
        # the library must not rely on it.  Just document the possibility.
        assert neterp_cost.g_del > 0


class TestSURS:
    def test_sub_is_sum_of_weights(self, small_graph, surs_cost):
        w = [e.weight for e in small_graph.edges]
        assert surs_cost.sub(0, 1) == pytest.approx(w[0] + w[1])
        assert surs_cost.sub(2, 2) == 0.0

    def test_ins_is_weight(self, small_graph, surs_cost):
        assert surs_cost.ins(4) == pytest.approx(small_graph.edge(4).weight)

    def test_filter_cost_is_weight(self, small_graph, surs_cost):
        assert surs_cost.filter_cost(7) == pytest.approx(small_graph.edge(7).weight)

    def test_neighborhood_is_self(self, surs_cost):
        assert surs_cost.neighbors(9) == [9]

    def test_edge_representation(self, surs_cost):
        assert surs_cost.representation == "edge"


class TestValidateCostModel:
    def test_detects_asymmetry(self, small_graph):
        class Broken(LevenshteinCost):
            def sub(self, a, b):
                return 1.0 if a < b else (0.0 if a == b else 2.0)

        with pytest.raises(CostModelError):
            validate_cost_model(Broken(), [0, 1, 2])

    def test_detects_nonzero_identity(self):
        class Broken(LevenshteinCost):
            def sub(self, a, b):
                return 0.5

        with pytest.raises(CostModelError):
            validate_cost_model(Broken(), [0, 1])

    def test_detects_bad_filter_cost(self):
        class Broken(LevenshteinCost):
            def filter_cost(self, q):
                return 5.0  # claims more than the deletion cost

        with pytest.raises(CostModelError):
            validate_cost_model(Broken(), [0, 1])


class TestArrayNativeHooks:
    """sub_row_array / ins_vector / SubstitutionMatrix — the vectorized
    interface consumed by the array-native verification backend."""

    @pytest.mark.parametrize(
        "model_name", ["lev_cost", "edr_cost", "erp_cost", "netedr_cost"]
    )
    def test_sub_row_array_matches_sub_row(self, model_name, request):
        import numpy as np

        costs = request.getfixturevalue(model_name)
        seq = [0, 3, 7, 3, 12]
        for p in (0, 5, 9):
            arr = costs.sub_row_array(p, seq)
            assert arr.dtype == np.float64
            assert arr.tolist() == pytest.approx(costs.sub_row(p, seq))

    def test_surs_sub_row_array(self, surs_cost):
        seq = [0, 2, 5, 2]
        assert surs_cost.sub_row_array(2, seq).tolist() == pytest.approx(
            surs_cost.sub_row(2, seq)
        )

    def test_ins_vector_matches_ins(self, erp_cost):
        seq = [1, 4, 9]
        assert erp_cost.ins_vector(seq).tolist() == [erp_cost.ins(q) for q in seq]

    def test_substitution_matrix_rows(self, edr_cost):
        query = (0, 5, 9, 5)
        matrix = edr_cost.sub_matrix(query)
        assert matrix.query == query
        assert matrix.cached_rows() == 0
        row = matrix.row(3)
        assert row.tolist() == edr_cost.sub_row(3, query)
        assert matrix.row(3) is row  # cached
        assert matrix.cached_rows() == 1
        assert matrix.delete(3) == edr_cost.delete(3)

    def test_substitution_matrix_dense_anchors(self, edr_cost):
        query = (0, 5, 9)
        matrix = edr_cost.sub_matrix(query, anchors=[5, 9, 5])
        assert matrix.dense_rows == 2  # deduped
        assert matrix.cached_rows() == 2
        for b in (5, 9):
            assert matrix.row(b).tolist() == edr_cost.sub_row(b, query)
        # Non-anchor symbols still resolve through the dict fallback.
        assert matrix.row(1).tolist() == edr_cost.sub_row(1, query)
        assert matrix.cached_rows() == 3

    def test_matrix_row_slices_are_views(self, lev_cost):
        matrix = lev_cost.sub_matrix((1, 2, 3, 2))
        row = matrix.row(2)
        forward = row[2:]
        backward = row[:2][::-1]
        assert forward.base is not None and backward.base is not None
        assert forward.tolist() == [1.0, 0.0]
        assert backward.tolist() == [0.0, 1.0]
