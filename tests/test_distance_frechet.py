"""Discrete Frechet distance (related-work function, §7)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.nonwed import discrete_frechet, dtw

strings = st.lists(st.integers(0, 5), min_size=1, max_size=9)


def abs_dist(a: int, b: int) -> float:
    return float(abs(a - b))


def brute_frechet(a, b, dist):
    """Reference via recursion over couplings."""
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def rec(i, j):
        d = dist(a[i], b[j])
        if i == 0 and j == 0:
            return d
        if i == 0:
            return max(rec(0, j - 1), d)
        if j == 0:
            return max(rec(i - 1, 0), d)
        return max(min(rec(i - 1, j), rec(i, j - 1), rec(i - 1, j - 1)), d)

    return rec(len(a) - 1, len(b) - 1)


class TestDiscreteFrechet:
    def test_identical(self):
        assert discrete_frechet([1, 2, 3], [1, 2, 3], abs_dist) == 0.0

    def test_constant_offset(self):
        assert discrete_frechet([0, 1, 2], [3, 4, 5], abs_dist) == 3.0

    def test_empty(self):
        assert math.isinf(discrete_frechet([], [1], abs_dist))

    @given(strings, strings)
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, a, b):
        got = discrete_frechet(a, b, abs_dist)
        assert got == pytest.approx(brute_frechet(tuple(a), tuple(b), abs_dist))

    @given(strings, strings)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert discrete_frechet(a, b, abs_dist) == pytest.approx(
            discrete_frechet(b, a, abs_dist)
        )

    @given(strings, strings)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_dtw_average(self, a, b):
        """Frechet (max) <= DTW (sum); and Frechet >= max pairwise min."""
        assert discrete_frechet(a, b, abs_dist) <= dtw(a, b, abs_dist) + 1e-9

    @given(strings)
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, a):
        assert discrete_frechet(a, a, abs_dist) == 0.0
