"""Non-WED similarity functions and the Appendix F identities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.costs import SURSCost
from repro.distance.nonwed import (
    dtw,
    lcrs,
    lcss,
    lcss_best_match,
    lors,
    lors_best_match,
    subsequence_dtw_best,
)
from repro.distance.wed import wed

symbols = st.integers(min_value=0, max_value=4)
strings = st.lists(symbols, min_size=1, max_size=10)


def abs_dist(a: int, b: int) -> float:
    return float(abs(a - b))


def brute_dtw(a, b, dist):
    """Reference DTW by full recursion."""
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def rec(i, j):
        if i == 0 and j == 0:
            return 0.0
        if i == 0 or j == 0:
            return math.inf
        return dist(a[i - 1], b[j - 1]) + min(rec(i - 1, j - 1), rec(i - 1, j), rec(i, j - 1))

    return rec(len(a), len(b))


class TestDTW:
    def test_identical(self):
        assert dtw([1, 2, 3], [1, 2, 3], abs_dist) == 0.0

    def test_stretching_is_free(self):
        assert dtw([1, 1, 1, 2], [1, 2], abs_dist) == 0.0

    @given(strings, strings)
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, a, b):
        assert dtw(a, b, abs_dist) == pytest.approx(
            brute_dtw(tuple(a), tuple(b), abs_dist)
        )

    @given(strings, strings)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, a, b):
        assert dtw(a, b, abs_dist) == pytest.approx(dtw(b, a, abs_dist))


class TestSubsequenceDTW:
    def test_finds_embedded_query(self):
        s, t, v = subsequence_dtw_best([9, 9, 1, 2, 3, 9], [1, 2, 3], abs_dist)
        assert (s, t) == (2, 4)
        assert v == 0.0

    @given(strings, strings)
    @settings(max_examples=60, deadline=None)
    def test_value_is_min_over_substrings(self, data, query):
        _, _, got = subsequence_dtw_best(data, query, abs_dist)
        want = min(
            brute_dtw(tuple(data[s : t + 1]), tuple(query), abs_dist)
            for s in range(len(data))
            for t in range(s, len(data))
        )
        assert got == pytest.approx(want)

    @given(strings, strings)
    @settings(max_examples=60, deadline=None)
    def test_span_achieves_value(self, data, query):
        s, t, v = subsequence_dtw_best(data, query, abs_dist)
        assert s <= t
        assert brute_dtw(tuple(data[s : t + 1]), tuple(query), abs_dist) == pytest.approx(v)


class TestLCSS:
    def test_classic(self):
        assert lcss([1, 2, 3, 4], [2, 4], lambda a, b: a == b) == 2

    def test_no_common(self):
        assert lcss([1, 1], [2, 2], lambda a, b: a == b) == 0

    @given(strings, strings)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_lengths(self, a, b):
        v = lcss(a, b, lambda x, y: x == y)
        assert 0 <= v <= min(len(a), len(b))

    def test_best_match_span(self):
        s, t, v = lcss_best_match([9, 1, 2, 9, 3], [1, 2, 3], lambda a, b: a == b)
        assert v == 3
        assert (s, t) == (1, 4)


class TestLORSAndLCRS:
    def test_lors_weighted(self):
        weights = {0: 5.0, 1: 1.0, 2: 3.0}
        v = lors([0, 1, 2], [0, 2], weights.get)
        assert v == 8.0

    def test_lors_respects_order(self):
        weights = {0: 5.0, 1: 1.0}
        # Reversed order: only one of the two can be taken.
        assert lors([0, 1], [1, 0], weights.get) == 5.0

    def test_lcrs_range(self):
        weights = {0: 2.0, 1: 2.0}
        assert lcrs([0, 1], [0, 1], weights.get) == 1.0
        assert lcrs([0], [1], weights.get) == 0.0

    def test_lors_best_match_span(self):
        weights = {k: 1.0 for k in range(10)}
        s, t, v = lors_best_match([7, 0, 8, 1, 7], [0, 1], weights.get)
        assert v == 2.0
        assert (s, t) == (1, 3)

    def test_no_match_sentinel(self):
        s, t, v = lors_best_match([1], [2], lambda e: 1.0)
        assert (s, t, v) == (0, -1, 0.0)


class TestAppendixFIdentities:
    """SURS(x,y) = w(x)+w(y) - 2*LORS(x,y), LCRS = LORS/(w(x)+w(y)-LORS)."""

    @given(
        x=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
        y=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_surs_lors_identity(self, x, y, small_graph):
        weights = [e.weight for e in small_graph.edges]
        surs = SURSCost(small_graph)
        w_total = sum(weights[e] for e in x) + sum(weights[e] for e in y)
        got = wed(x, y, surs)
        assert got == pytest.approx(w_total - 2 * lors(x, y, lambda e: weights[e]))

    @given(
        x=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
        y=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_lcrs_from_lors(self, x, y, small_graph):
        weights = [e.weight for e in small_graph.edges]
        weight_fn = lambda e: weights[e]  # noqa: E731
        shared = lors(x, y, weight_fn)
        total = sum(weight_fn(e) for e in x) + sum(weight_fn(e) for e in y)
        want = shared / (total - shared) if total > shared else 1.0
        assert lcrs(x, y, weight_fn) == pytest.approx(want)
