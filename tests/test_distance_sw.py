"""Smith–Waterman: best substring and the all-matches oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.costs import LevenshteinCost
from repro.distance.smith_waterman import all_matches, best_match
from repro.distance.wed import wed

lev = LevenshteinCost()

symbols = st.integers(min_value=0, max_value=4)
data_strings = st.lists(symbols, min_size=1, max_size=12)
query_strings = st.lists(symbols, min_size=1, max_size=5)


def brute_best(data, query):
    best = (0, -1, wed([], query, lev))  # empty substring
    for s in range(len(data)):
        for t in range(s, len(data)):
            d = wed(data[s : t + 1], query, lev)
            if d < best[2]:
                best = (s, t, d)
    return best


def brute_all(data, query, tau):
    out = []
    for s in range(len(data)):
        for t in range(s, len(data)):
            d = wed(data[s : t + 1], query, lev)
            if d < tau:
                out.append((s, t, d))
    return out


class TestBestMatch:
    def test_exact_substring(self):
        s, t, d = best_match([9, 1, 2, 3, 9], [1, 2, 3], lev)
        assert (s, t, d) == (1, 3, 0.0)

    def test_paper_example_2(self):
        """P=ABCDE, Q=BFD: wed(P[1..3], Q) == 1 < 2."""
        A, B, C, D, E, F = range(6)
        s, t, d = best_match([A, B, C, D, E], [B, F, D], lev)
        assert (s, t) == (1, 3)
        assert d == 1.0

    @given(data_strings, query_strings)
    @settings(max_examples=100, deadline=None)
    def test_value_matches_brute_force(self, data, query):
        _, _, got = best_match(data, query, lev)
        _, _, want = brute_best(data, query)
        assert got == want

    @given(data_strings, query_strings)
    @settings(max_examples=100, deadline=None)
    def test_reported_span_achieves_value(self, data, query):
        s, t, d = best_match(data, query, lev)
        assert wed(data[s : t + 1], query, lev) == d

    def test_whole_query_deleted(self):
        # Query totally dissimilar and longer than data: inserting
        # everything may be optimal, yielding an empty match.
        s, t, d = best_match([0], [1, 1, 1], lev)
        assert d <= 3.0


class TestAllMatches:
    def test_non_positive_tau(self):
        assert all_matches([1, 2, 3], [1], lev, 0.0) == []
        assert all_matches([1, 2, 3], [1], lev, -1.0) == []

    def test_exact_hits(self):
        got = all_matches([1, 2, 1, 2], [1, 2], lev, 1.0)
        spans = {(s, t) for s, t, _ in got}
        assert (0, 1) in spans and (2, 3) in spans

    def test_strict_inequality(self):
        # wed == tau must NOT match (Definition 2 uses <).
        got = all_matches([1, 9, 3], [1, 2, 3], lev, 1.0)
        assert got == []
        got = all_matches([1, 9, 3], [1, 2, 3], lev, 1.0 + 1e-9)
        assert any(d == 1.0 for _, _, d in got)

    @given(data_strings, query_strings, st.floats(min_value=0.5, max_value=4.5))
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, data, query, tau):
        got = sorted(all_matches(data, query, lev, tau))
        want = sorted(brute_all(data, query, tau))
        assert got == want

    @given(data_strings, query_strings)
    @settings(max_examples=60, deadline=None)
    def test_distances_are_exact(self, data, query):
        for s, t, d in all_matches(data, query, lev, 3.0):
            assert wed(data[s : t + 1], query, lev) == d

    def test_no_empty_matches(self):
        # Empty subtrajectories are excluded by construction.
        for s, t, _ in all_matches([1, 1], [1], lev, 10.0):
            assert s <= t
