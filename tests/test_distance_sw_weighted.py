"""Smith–Waterman and verification under *weighted* (non-unit) costs.

The Lev-based suites exercise the combinatorics; these tests make sure
nothing silently assumes unit costs (real WED instances are continuous).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import MatchSet
from repro.core.verification import Verifier
from repro.distance.costs import CostModel
from repro.distance.smith_waterman import all_matches, best_match
from repro.distance.wed import wed


class RampCost(CostModel):
    """sub(a,b) = 0.3|a-b|, ins = del = 0.9 — asymmetric op costs,
    non-integer values, small alphabet."""

    representation = "vertex"
    name = "ramp"

    def sub(self, a: int, b: int) -> float:
        return 0.3 * abs(a - b)

    def ins(self, a: int) -> float:
        return 0.9

    def neighbors(self, q):
        return [b for b in range(6) if self.sub(q, b) <= 0.3]

    def filter_cost(self, q: int) -> float:
        outside = [self.sub(q, b) for b in range(6) if b not in self.neighbors(q)]
        return min([self.ins(q)] + outside)


ramp = RampCost()
strings = st.lists(st.integers(0, 5), min_size=1, max_size=9)


def brute_all(data, query, tau):
    out = []
    for s in range(len(data)):
        for t in range(s, len(data)):
            d = wed(data[s : t + 1], query, ramp)
            if d < tau:
                out.append((s, t))
    return sorted(out)


class TestWeightedSW:
    @given(strings, strings, st.floats(0.3, 3.0))
    @settings(max_examples=120, deadline=None)
    def test_all_matches_weighted(self, data, query, tau):
        got = sorted((s, t) for s, t, _ in all_matches(data, query, ramp, tau))
        assert got == brute_all(data, query, tau)

    @given(strings, strings)
    @settings(max_examples=80, deadline=None)
    def test_best_match_weighted(self, data, query):
        s, t, d = best_match(data, query, ramp)
        best = min(
            wed(data[a : b + 1], query, ramp)
            for a in range(len(data))
            for b in range(a - 1, len(data))  # b = a-1: empty substring
        )
        assert d == pytest.approx(best)


class TestWeightedVerification:
    @given(strings, strings, st.floats(0.3, 2.5))
    @settings(max_examples=120, deadline=None)
    def test_verifier_matches_oracle(self, data, query, tau):
        datasets = [data]
        candidates = [
            (0, j, iq)
            for j, sym in enumerate(data)
            for iq, q in enumerate(query)
            if sym in ramp.neighbors(q)
        ]
        # Torch-style full anchor set covers every tau-subsequence choice.
        verifier = Verifier(lambda tid: datasets[tid], query, ramp, tau)
        ms = MatchSet()
        verifier.verify_all(candidates, ms)
        got = {(m.start, m.end) for m in ms}
        want = set(brute_all(data, query, tau))
        # Razor's-edge exclusion: with non-representable costs (0.3/0.9) a
        # subtrajectory whose true WED *equals* tau sits on the strict-<
        # boundary, where the verifier's bidirectional sum (left + anchor +
        # right) and the oracle's monolithic DP legitimately round one ulp
        # apart.  Membership there is floating-point-implementation-defined;
        # the dyadic-cost property tests (test_paper_properties) pin exact
        # behavior where every sum is representable.
        boundary = {
            (s, t)
            for s in range(len(data))
            for t in range(s, len(data))
            if abs(wed(data[s : t + 1], query, ramp) - tau) < 1e-9
        }
        got -= boundary
        want -= boundary
        # The anchor set only covers matches sharing a neighborhood symbol;
        # by Theorem 1 that is all of them whenever c(Q') >= tau for the
        # full query (Torch uses every position).
        total_c = sum(ramp.filter_cost(q) for q in query)
        if total_c >= tau:
            assert got == want
        else:
            assert got <= want

    @given(strings, strings)
    @settings(max_examples=60, deadline=None)
    def test_distances_exact_weighted(self, data, query):
        """Reported distances are exact *when Lemma 1 applies* — i.e. when
        a tau-subsequence exists (c(Q) >= tau).  Below that threshold the
        anchor decompositions are only upper bounds (the engine never
        enters this regime: it falls back to a full scan instead)."""
        datasets = [data]
        tau = 2.0
        candidates = [
            (0, j, iq)
            for j, sym in enumerate(data)
            for iq, q in enumerate(query)
            if sym in ramp.neighbors(q)
        ]
        verifier = Verifier(lambda tid: datasets[tid], query, ramp, tau)
        ms = MatchSet()
        verifier.verify_all(candidates, ms)
        feasible = sum(ramp.filter_cost(q) for q in query) >= tau
        for m in ms:
            exact = wed(data[m.start : m.end + 1], query, ramp)
            if feasible:
                assert m.distance == pytest.approx(exact)
            else:
                assert m.distance >= exact - 1e-9  # still a sound upper bound
