"""WED dynamic programming: reference recursion, properties, instances."""

import math
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.costs import LevenshteinCost
from repro.distance.wed import wed, wed_row_init, wed_step, wed_within

lev = LevenshteinCost()


def reference_wed(data, query, costs):
    """Direct implementation of the §2.2.1 recursion (exponential; tiny
    inputs only)."""

    @lru_cache(maxsize=None)
    def rec(i, j):  # wed(data[:i], query[:j])
        if i == 0:
            return sum(costs.ins(q) for q in query[:j])
        if j == 0:
            return sum(costs.delete(p) for p in data[:i])
        return min(
            rec(i - 1, j - 1) + costs.sub(data[i - 1], query[j - 1]),
            rec(i - 1, j) + costs.delete(data[i - 1]),
            rec(i, j - 1) + costs.ins(query[j - 1]),
        )

    return rec(len(data), len(query))


symbols = st.integers(min_value=0, max_value=5)
strings = st.lists(symbols, min_size=0, max_size=8)


class TestAgainstReference:
    @given(strings, strings)
    @settings(max_examples=120, deadline=None)
    def test_levenshtein_matches_recursion(self, a, b):
        assert wed(a, b, lev) == reference_wed(tuple(a), tuple(b), lev)

    def test_known_values(self):
        # Classic examples (kitten/sitting analog on ints).
        assert wed([1, 2, 3], [1, 2, 3], lev) == 0
        assert wed([1, 2, 3], [1, 9, 3], lev) == 1
        assert wed([1, 2], [1, 2, 3, 4], lev) == 2
        assert wed([], [1, 2], lev) == 2
        assert wed([1, 2], [], lev) == 2
        assert wed([], [], lev) == 0


class TestProposition1:
    """Nonnegativity, pseudo-positive-definiteness, symmetry."""

    @given(strings, strings)
    @settings(max_examples=80, deadline=None)
    def test_nonnegative(self, a, b):
        assert wed(a, b, lev) >= 0

    @given(strings)
    @settings(max_examples=50, deadline=None)
    def test_self_distance_zero(self, a):
        assert wed(a, a, lev) == 0

    @given(strings, strings)
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, a, b):
        assert wed(a, b, lev) == wed(b, a, lev)


class TestWeightedInstance:
    def test_surs_example_1(self, small_graph, surs_cost):
        """Example 1 of the paper: SURS totals the unshared edge weights."""
        w = [e.weight for e in small_graph.edges]
        # P = b e f g, Q = a b c d g over edge ids 0..6 standing for a..g.
        a, b, c, d, e, f, g = range(7)
        p = [b, e, f, g]
        q = [a, b, c, d, g]
        got = wed(p, q, surs_cost)
        want = w[a] + w[c] + w[d] + w[e] + w[f]
        assert got == pytest.approx(want)

    def test_surs_identical_paths(self, surs_cost):
        assert wed([0, 1, 2], [0, 1, 2], surs_cost) == 0.0

    def test_surs_disjoint_paths_cost_everything(self, small_graph, surs_cost):
        w = [e.weight for e in small_graph.edges]
        assert wed([0, 1], [2, 3], surs_cost) == pytest.approx(w[0] + w[1] + w[2] + w[3])


class TestStepHelpers:
    def test_row_init(self):
        row = wed_row_init(lev, [1, 2, 3])
        assert row == [0.0, 1.0, 2.0, 3.0]

    def test_step_extends_correctly(self):
        query = [1, 2]
        row = wed_row_init(lev, query)
        row = wed_step(lev, query, 1, row)
        assert row == [1.0, 0.0, 1.0]  # wed("1", ""), wed("1","1"), wed("1","12")

    def test_precomputed_rows_match(self):
        query = [1, 2, 3]
        row = wed_row_init(lev, query)
        default = wed_step(lev, query, 2, row)
        explicit = wed_step(
            lev,
            query,
            2,
            row,
            sub_row=lev.sub_row(2, query),
            ins_row=[1.0, 1.0, 1.0],
        )
        assert default == explicit


class TestWedWithin:
    @given(strings, strings, st.floats(min_value=0.5, max_value=8.5))
    @settings(max_examples=100, deadline=None)
    def test_consistent_with_wed(self, a, b, tau):
        exact = wed(a, b, lev)
        thresholded = wed_within(a, b, lev, tau)
        if exact < tau:
            assert thresholded == exact
        else:
            assert math.isinf(thresholded)

    def test_early_exit_does_not_lose_matches(self):
        assert wed_within([1, 2, 3], [1, 2, 3], lev, 0.5) == 0.0
        assert math.isinf(wed_within([1, 2, 3], [4, 5, 6], lev, 2.0))


class TestWedStepMin:
    """wed_step_min returns the row plus its minimum in one pass."""

    @given(strings, strings)
    @settings(max_examples=100, deadline=None)
    def test_min_matches_scan(self, data, query):
        from repro.distance.wed import wed_step_min

        row = wed_row_init(lev, query)
        for p in data:
            row, row_min = wed_step_min(lev, query, p, row)
            assert row_min == min(row)

    def test_wed_step_delegates(self):
        from repro.distance.wed import wed_step_min

        query = [1, 2, 3]
        row = wed_row_init(lev, query)
        assert wed_step(lev, query, 2, row) == wed_step_min(lev, query, 2, row)[0]
