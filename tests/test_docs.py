"""The documentation stays true: links resolve, examples execute.

Three docs are part of the deliverable surface (`docs/ARCHITECTURE.md`,
`docs/OPERATIONS.md`, `docs/INDEX_FORMAT.md`) and the README links to
all of them.  Prose rots silently, so this suite mechanically enforces
what can be enforced:

- every relative markdown link in README.md and docs/*.md points at a
  file that exists;
- every repo path a doc names in backticks (``src/repro/...``,
  ``docs/...``, ``tests/...``, ``benchmarks/...``) exists;
- the fenced examples in the index-format specification actually run
  (``doctest`` over the file — the same check CI runs);
- the README links all three docs, so they are discoverable.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda p: p.name,
)

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_BACKTICK_PATH = re.compile(
    r"`((?:src/repro|docs|tests|benchmarks)/[A-Za-z0-9_./-]+)`"
)


def _doc_ids():
    return [str(p.relative_to(REPO)) for p in DOC_FILES]


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (doc.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative links {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_backticked_repo_paths_exist(doc):
    text = doc.read_text(encoding="utf-8")
    missing = [
        path
        for path in _BACKTICK_PATH.findall(text)
        if not (REPO / path).exists()
    ]
    assert not missing, f"{doc.name}: names nonexistent repo paths {missing}"


def test_readme_links_all_three_docs():
    text = (REPO / "README.md").read_text(encoding="utf-8")
    for name in ("ARCHITECTURE.md", "OPERATIONS.md", "INDEX_FORMAT.md"):
        assert f"docs/{name}" in text, f"README does not link docs/{name}"


def test_index_format_examples_execute():
    results = doctest.testfile(
        str(REPO / "docs" / "INDEX_FORMAT.md"),
        module_relative=False,
        verbose=False,
    )
    assert results.attempted > 0, "spec lost its executable examples"
    assert results.failed == 0
