"""dp_backend="auto" selection and the engine-level SubstitutionMatrix LRU.

The adaptive backend (ISSUE 4) picks python vs numpy per query from query
length and cost-model vectorizability — safe because the backends are
bit-identical — and the knob must round-trip CLI -> engine -> workers ->
healthz.  The SubstitutionMatrix cache must make repeated-query savings
observable through the same surfaces.
"""

import json
import urllib.request

import pytest

from repro.cli import build_parser
from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.verification import (
    AUTO_PYTHON_MAX_QUERY,
    Verifier,
    choose_dp_backend,
)
from repro.distance.costs import CostModel, SubstitutionMatrixCache
from repro.exceptions import QueryError
from repro.service import QueryService, ServiceServer
from tests.conftest import sample_query


def long_query(dataset, rng, length):
    """A query longer than the fixture trajectories: concatenated samples
    (queries are arbitrary symbol strings, not necessarily walks)."""
    out = []
    while len(out) < length:
        out.extend(sample_query(dataset, rng, 8))
    return out[:length]


class _SlowRowCost(CostModel):
    """A model without a vectorized sub_row_array override (like the
    network-aware family): rows cost real per-element work, so auto must
    pick numpy at every query length."""

    representation = "vertex"
    name = "slowrow"

    def sub(self, a: int, b: int) -> float:
        return 0.0 if a == b else 1.0

    def ins(self, a: int) -> float:
        return 1.0


class TestChooseDpBackend:
    def test_boundary_lengths_unit_cost(self, lev_cost):
        assert lev_cost.vectorized_rows()
        assert choose_dp_backend(AUTO_PYTHON_MAX_QUERY, lev_cost) == "python"
        assert choose_dp_backend(AUTO_PYTHON_MAX_QUERY + 1, lev_cost) == "numpy"
        assert choose_dp_backend(1, lev_cost) == "python"

    def test_boundary_lengths_edr(self, edr_cost):
        assert edr_cost.vectorized_rows()
        assert choose_dp_backend(AUTO_PYTHON_MAX_QUERY, edr_cost) == "python"
        assert choose_dp_backend(AUTO_PYTHON_MAX_QUERY + 1, edr_cost) == "numpy"

    def test_expensive_rows_always_numpy(self, netedr_cost):
        """NetEDR has no vectorized row override — rows are shortest-path
        work the array-native path computes once per symbol, so numpy wins
        at every length, boundary included."""
        assert not netedr_cost.vectorized_rows()
        for length in (1, AUTO_PYTHON_MAX_QUERY, AUTO_PYTHON_MAX_QUERY + 1, 100):
            assert choose_dp_backend(length, netedr_cost) == "numpy"
        assert not _SlowRowCost().vectorized_rows()
        assert choose_dp_backend(2, _SlowRowCost()) == "numpy"

    def test_erp_not_vectorized_routes_numpy(self, erp_cost):
        # ERP deliberately keeps the scalar row (math.hypot bit-identity).
        assert not erp_cost.vectorized_rows()
        assert choose_dp_backend(2, erp_cost) == "numpy"


class TestEngineAuto:
    def test_default_is_auto(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        assert engine.dp_backend == "auto"

    def test_short_query_runs_python(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        result = engine.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.3)
        assert result.dp_backend_used == "python"

    def test_long_query_runs_numpy(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = long_query(vertex_dataset, rng, AUTO_PYTHON_MAX_QUERY + 1)
        result = engine.query(query, tau_ratio=0.3)
        assert result.dp_backend_used == "numpy"

    def test_short_netedr_query_runs_numpy(self, vertex_dataset, netedr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, netedr_cost)
        result = engine.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.3)
        assert result.dp_backend_used == "numpy"

    def test_explicit_backend_is_honoured(self, vertex_dataset, edr_cost, rng):
        query = sample_query(vertex_dataset, rng, 6)
        for backend in ("python", "numpy"):
            engine = SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend=backend)
            assert engine.dp_backend == backend
            assert engine.query(query, tau_ratio=0.3).dp_backend_used == backend

    def test_auto_matches_forced_backends(self, vertex_dataset, edr_cost, rng):
        query = sample_query(vertex_dataset, rng, 6)
        answers = []
        for backend in ("auto", "python", "numpy"):
            engine = SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend=backend)
            result = engine.query(query, tau_ratio=0.3)
            answers.append(
                [(m.trajectory_id, m.start, m.end, m.distance) for m in result.matches]
            )
        assert answers[0] == answers[1] == answers[2]

    def test_unknown_backend_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            SubtrajectorySearch(vertex_dataset, edr_cost, dp_backend="cuda")
        with pytest.raises(QueryError):
            Verifier(lambda t: [], [1], _SlowRowCost(), 1.0, dp_backend="cuda")

    def test_verifier_resolves_auto(self, lev_cost):
        short = Verifier(lambda t: [], [1, 2], lev_cost, 1.0, dp_backend="auto")
        assert short.dp_backend == "python"
        long_q = list(range(AUTO_PYTHON_MAX_QUERY + 1))
        assert (
            Verifier(lambda t: [], long_q, lev_cost, 1.0, dp_backend="auto").dp_backend
            == "numpy"
        )


class TestSubstitutionMatrixCache:
    def test_lru_eviction_and_counters(self):
        cache = SubstitutionMatrixCache(2)
        assert cache.get("a") is None  # miss
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refreshes recency
        cache.put("c", "C")  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("c") == "C"
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["hits"] == 2
        assert stats["misses"] == 2

    def test_zero_capacity_disables(self):
        cache = SubstitutionMatrixCache(0)
        cache.put("a", "A")
        assert cache.get("a") is None
        assert cache.stats() == {"capacity": 0, "size": 0, "hits": 0, "misses": 0}

    def test_engine_repeated_query_hits(self, vertex_dataset, netedr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, netedr_cost)
        query = sample_query(vertex_dataset, rng, 8)
        first = engine.query(query, tau_ratio=0.3)
        assert engine.substitution_cache_stats()["misses"] == 1
        repeat = engine.query(query, tau_ratio=0.3)
        stats = engine.substitution_cache_stats()
        assert stats["hits"] == 1
        assert stats["size"] == 1
        # A hit must not change the answer (the matrix is dataset-free).
        assert [(m.trajectory_id, m.start, m.end, m.distance) for m in first.matches] == [
            (m.trajectory_id, m.start, m.end, m.distance) for m in repeat.matches
        ]
        # The matrix is threshold-independent: varying tau still hits.
        engine.query(query, tau_ratio=0.25)
        stats = engine.substitution_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        # A different query is a genuine miss.
        other = sample_query(vertex_dataset, rng, 9)
        if other != query:
            engine.query(other, tau_ratio=0.3)
            assert engine.substitution_cache_stats()["misses"] == 2

    def test_engine_cache_disabled(self, vertex_dataset, netedr_cost, rng):
        engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, substitution_cache_size=0
        )
        query = sample_query(vertex_dataset, rng, 8)
        engine.query(query, tau_ratio=0.3)
        engine.query(query, tau_ratio=0.3)
        assert engine.substitution_cache_stats() == {
            "capacity": 0,
            "size": 0,
            "hits": 0,
            "misses": 0,
        }

    def test_negative_capacity_rejected(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError):
            SubtrajectorySearch(
                vertex_dataset, edr_cost, substitution_cache_size=-1
            )

    def test_direction_rows_concurrent_first_touch(self, lev_cost):
        """The dense slot table is shared across server threads via the
        matrix LRU: concurrent first-touch fills must neither fork slots
        nor tear rows (regression for a slot-assignment race)."""
        import threading

        query = list(range(24))
        matrix = lev_cost.sub_matrix(query)
        rows = matrix.direction_rows((3, "f"), slice(4, None))
        symbols = list(range(500))
        barrier = threading.Barrier(4)

        def fill(offset):
            barrier.wait()
            for s in symbols[offset:] + symbols[:offset]:
                rows.slot(s)

        threads = [threading.Thread(target=fill, args=(i * 125,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rows) == len(symbols)
        slots = [rows.slot(s) for s in symbols]
        assert sorted(slots) == list(range(len(symbols)))  # no forked slots
        for s in symbols:
            row, delete = rows.get(s)
            expected = lev_cost.sub_row_array(s, query)[4:]
            assert row.tolist() == expected.tolist()  # no torn rows
            assert delete == lev_cost.delete(s)


class TestKnobRoundTrip:
    """--dp-backend / --substitution-cache-size: CLI -> engine -> workers
    -> healthz."""

    def test_cli_defaults(self):
        from repro.core.engine import DEFAULT_SUBSTITUTION_CACHE

        args = build_parser().parse_args(["serve", "--self-test"])
        assert args.dp_backend == "auto"
        assert args.substitution_cache_size == DEFAULT_SUBSTITUTION_CACHE
        args = build_parser().parse_args(
            ["query", "--network", "n", "--trips", "t", "--query", "1",
             "--dp-backend", "python", "--substitution-cache-size", "0"]
        )
        assert args.dp_backend == "python"
        assert args.substitution_cache_size == 0

    def test_partitioned_forwards_and_aggregates(self, vertex_dataset, edr_cost, rng):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=2,
            dp_backend="auto",
            substitution_cache_size=8,
        )
        assert engine.dp_backend == "auto"
        query = long_query(vertex_dataset, rng, AUTO_PYTHON_MAX_QUERY + 1)
        result = engine.query(query, tau_ratio=0.3)
        assert result.dp_backend_used == "numpy"
        agg = engine.substitution_cache_stats()
        assert agg["shards"] == agg["shards_reporting"] == 2
        assert agg["capacity"] == 16
        assert agg["misses"] >= 1
        engine.query(query, tau_ratio=0.3)
        assert engine.substitution_cache_stats()["hits"] >= 1
        engine.close()

    def test_workers_round_trip(self, vertex_dataset, edr_cost, rng):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=2,
            backend="processes",
            dp_backend="auto",
            substitution_cache_size=8,
        )
        try:
            query = sample_query(vertex_dataset, rng, 6)
            reference = SubtrajectorySearch(vertex_dataset, edr_cost)
            result = engine.query(query, tau_ratio=0.3)
            expected = reference.query(query, tau_ratio=0.3)
            assert [(m.trajectory_id, m.start, m.end) for m in result.matches] == [
                (m.trajectory_id, m.start, m.end) for m in expected.matches
            ]
            # Auto resolved inside the worker processes and shipped back.
            assert result.dp_backend_used == expected.dp_backend_used == "python"
            engine.query(query, tau_ratio=0.3)
            agg = engine.substitution_cache_stats()
            assert agg["shards_reporting"] == 2  # idle workers all answer
            # Short EDR queries run the python backend — no matrices built.
            assert agg["capacity"] == 16
        finally:
            engine.close()

    def test_healthz_survives_unpollable_engine(self, vertex_dataset, edr_cost):
        """A stats poll that raises (dead worker, closed engine) must
        degrade the substitution_cache field, not drop the probe
        connection — /healthz answers liveness, not shard health."""
        engine = PartitionedSubtrajectorySearch(vertex_dataset, edr_cost, num_shards=2)
        service = QueryService(engine)
        with ServiceServer(service) as server:
            server.start()
            engine.close()  # substitution_cache_stats now raises QueryError
            with urllib.request.urlopen(server.url + "/healthz", timeout=10) as resp:
                health = json.loads(resp.read().decode("utf-8"))
            assert health["status"] == "ok"
            assert "error" in health["substitution_cache"]

    def test_healthz_exposes_backend_and_cache(
        self, small_graph, netedr_cost, rng, trips
    ):
        from repro.trajectory.dataset import TrajectoryDataset

        # A private dataset: the single-node engine mutates its dataset
        # in place on add_trajectory, and the session-scoped fixture
        # must stay at its seeded length for every later test.
        vertex_dataset = TrajectoryDataset(small_graph, "vertex")
        vertex_dataset.extend(trips)
        engine = SubtrajectorySearch(vertex_dataset, netedr_cost)
        service = QueryService(engine)
        with ServiceServer(service) as server:
            server.start()
            query = sample_query(vertex_dataset, rng, 8)
            service.query(query, tau_ratio=0.3)
            # An online insert invalidates the *result* cache, but the
            # substitution matrix depends only on query + cost model: the
            # repeat recomputes the answer yet reuses the matrix — exactly
            # the saving the /healthz counters must make visible.
            service.add_trajectory(trips[0])
            service.query(query, tau_ratio=0.3)
            with urllib.request.urlopen(server.url + "/healthz", timeout=10) as resp:
                health = json.loads(resp.read().decode("utf-8"))
            assert health["dp_backend"] == "auto"
            assert health["substitution_cache"]["hits"] >= 1
            assert health["substitution_cache"]["misses"] >= 1
            stats = service.stats()
            assert stats["dp_backend"] == "auto"
            assert stats["substitution_cache"]["capacity"] > 0
            assert stats["coalesced_retries"] == 0
