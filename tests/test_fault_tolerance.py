"""Fault-tolerant serving: supervision, replay, degradation, chaos (ISSUE 8).

Everything here is deterministic: worker deaths are injected by a seeded
:class:`repro.faultinject.FaultPlan` keyed to request ordinals (never by
racing ``kill`` against the scheduler), so a failing run replays
bit-identically.
"""

import json
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.supervision import (
    BREAKER_STATES,
    CircuitBreaker,
    RespawnBackoff,
)
from repro.core.workers import ShardWorkerPool
from repro.exceptions import (
    QueryError,
    ShardUnavailableError,
    WorkerError,
)
from repro.faultinject import (
    FAULT_EXIT_CODE,
    FaultPlan,
    FaultRule,
    load_fault_plan,
)
from tests.conftest import sample_query

pytestmark = pytest.mark.timeout(300)


def keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


def make_engine(dataset, costs, *, num_shards=2, **kwargs):
    return PartitionedSubtrajectorySearch(
        dataset, costs, num_shards=num_shards, backend="processes", **kwargs
    )


#: a shard held permanently down: dies before every query, and the
#: supervisor's respawns are made to fail (effectively) forever.
def held_down(shard):
    return FaultPlan(
        rules=[
            FaultRule(shard=shard, op="kill_before", request=0),
            FaultRule(shard=shard, op="fail_respawn", count=10_000),
        ]
    )


# ---------------------------------------------------------------------------
# FaultPlan / FaultRule (pure, no processes)
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultRule(shard=0, op="set_on_fire")

    def test_malformed_rule_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(shard=-1, op="kill_before")
        with pytest.raises(ValueError):
            FaultRule(shard=0, op="delay_reply", seconds=-1.0)
        with pytest.raises(ValueError, match="'on'"):
            FaultRule(shard=0, op="kill_before", on="stats")

    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=[
                FaultRule(shard=1, op="kill_after", request=3),
                FaultRule(shard=0, op="delay_reply", request=1, seconds=0.05),
                FaultRule(shard=2, op="fail_respawn", count=4),
            ],
            seed=11,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_kill_loop_is_a_pure_function_of_its_arguments(self):
        a = FaultPlan.kill_loop(seed=5, num_shards=3, kills=4, every=3)
        b = FaultPlan.kill_loop(seed=5, num_shards=3, kills=4, every=3)
        c = FaultPlan.kill_loop(seed=6, num_shards=3, kills=4, every=3)
        assert a == b
        assert a != c
        assert len(a.rules) == 4
        # Ordinals strictly advance per victim shard, so each rule fires.
        for shard in range(3):
            ordinals = [r.request for r in a.rules if r.shard == shard]
            assert ordinals == sorted(ordinals)
            assert len(set(ordinals)) == len(ordinals)

    def test_worker_faults_slices_per_shard(self):
        plan = FaultPlan(
            rules=[
                FaultRule(shard=0, op="kill_before", request=2),
                FaultRule(shard=1, op="fail_respawn", count=2),
            ]
        )
        assert plan.worker_faults(0) is not None
        # fail_respawn is parent-side: shard 1 has no worker-side table.
        assert plan.worker_faults(1) is None
        assert plan.respawn_failures(1) == 2
        assert plan.respawn_failures(0) == 0
        assert plan.kill_ordinals(0) == (2,)

    def test_load_fault_plan_inline_and_file(self, tmp_path):
        plan = FaultPlan(rules=[FaultRule(shard=0, op="drop_pipe", request=1)])
        assert load_fault_plan(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert load_fault_plan(str(path)) == plan
        assert load_fault_plan(None) is None


# ---------------------------------------------------------------------------
# Supervision policy objects (pure, fake clocks)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = [0.0]
        b = CircuitBreaker(failure_threshold=3, cooldown=5.0, clock=lambda: clock[0])
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open" and not b.allow()

    def test_success_resets_the_failure_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == "closed"

    def test_half_open_single_probe_then_close_or_reopen(self):
        clock = [0.0]
        b = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=lambda: clock[0])
        b.record_failure()
        assert b.state == "open"
        clock[0] = 6.0
        assert b.state == "half_open"
        assert b.allow()  # probe slot
        assert not b.allow()  # only ONE probe
        b.record_success()
        assert b.state == "closed"
        # And the failure path re-opens from half-open:
        b.record_failure()
        clock[0] = 12.0
        assert b.allow()
        b.record_failure()
        assert b.state == "open"

    def test_breaker_states_tuple_matches_metric_contract(self):
        assert BREAKER_STATES == ("closed", "half_open", "open")


class TestRespawnBackoff:
    def test_bounded_exponential_with_deterministic_jitter(self):
        a = RespawnBackoff(base=0.1, cap=1.0, seed=3)
        b = RespawnBackoff(base=0.1, cap=1.0, seed=3)
        delays = [a.delay(k) for k in range(8)]
        assert delays == [b.delay(k) for k in range(8)]
        # jitter is [0.5, 1.5) around min(cap, base * 2**k)
        for k, d in enumerate(delays):
            raw = min(1.0, 0.1 * 2**k)
            assert raw * 0.5 <= d < raw * 1.5
        assert max(delays) < 1.5  # cap * 1.5


# ---------------------------------------------------------------------------
# Crash semantics & recovery (processes backend)
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_injected_kill_recovers_bit_identically(
        self, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        with make_engine(vertex_dataset, edr_cost) as undisturbed:
            expected = undisturbed.query(query, tau_ratio=0.25)
        plan = FaultPlan(rules=[FaultRule(shard=1, op="kill_before", request=2)])
        with make_engine(vertex_dataset, edr_cost, fault_plan=plan) as engine:
            first = engine.query(query, tau_ratio=0.25)
            killed = engine.query(query, tau_ratio=0.25)  # shard 1 dies here
            after = engine.query(query, tau_ratio=0.25)
            for result in (first, killed, after):
                assert keys(result) == keys(expected)
                assert result.complete and result.degraded_shards == ()
            assert engine.restarts_total() == 1

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        shard=st.integers(min_value=0, max_value=1),
        kill_request=st.integers(min_value=1, max_value=3),
        after=st.booleans(),
    )
    def test_any_kill_point_recovers_bit_identically(
        self, vertex_dataset, edr_cost, shard, kill_request, after
    ):
        # Property: wherever the worker dies — before or after any of the
        # first three requests, either shard — every query is answered
        # exactly as an undisturbed engine answers it.
        query = list(vertex_dataset.symbols(0))[:6]
        with make_engine(vertex_dataset, edr_cost) as undisturbed:
            expected = keys(undisturbed.query(query, tau_ratio=0.25))
        plan = FaultPlan(
            rules=[
                FaultRule(
                    shard=shard,
                    op="kill_after" if after else "kill_before",
                    request=kill_request,
                )
            ]
        )
        with make_engine(vertex_dataset, edr_cost, fault_plan=plan) as engine:
            for _ in range(4):
                result = engine.query(query, tau_ratio=0.25)
                assert keys(result) == expected
                assert result.complete

    def test_dropped_pipe_recovers_too(self, vertex_dataset, edr_cost, rng):
        query = sample_query(vertex_dataset, rng, 6)
        plan = FaultPlan(rules=[FaultRule(shard=0, op="drop_pipe", request=1)])
        with make_engine(vertex_dataset, edr_cost) as undisturbed:
            expected = keys(undisturbed.query(query, tau_ratio=0.25))
        with make_engine(vertex_dataset, edr_cost, fault_plan=plan) as engine:
            assert keys(engine.query(query, tau_ratio=0.25)) == expected
            assert engine.restarts_total() == 1

    def test_journal_replay_covers_online_inserts(
        self, small_graph, edr_cost, trips
    ):
        from repro.trajectory.dataset import TrajectoryDataset

        ds = TrajectoryDataset(small_graph)
        for t in trips[:12]:
            ds.add(t)
        plan = FaultPlan(
            rules=[FaultRule(shard=0, op="kill_after", request=1, on="query")]
        )
        with make_engine(ds, edr_cost, fault_plan=plan) as engine:
            gid = engine.add_trajectory(trips[12])  # gid 12 -> shard 0
            assert gid == 12
            query = list(trips[12].path[:6])
            before = engine.query(query, tau_ratio=0.25)  # kills shard 0 after
            assert any(m.trajectory_id == gid for m in before.matches)
            # The respawned worker rebuilt + replayed: identical again.
            after = engine.query(query, tau_ratio=0.25)
            assert keys(after) == keys(before)
            assert engine.restarts_total() == 1

    def test_insert_crash_between_add_and_ack_is_replayable(
        self, small_graph, edr_cost, trips
    ):
        from repro.trajectory.dataset import TrajectoryDataset

        ds = TrajectoryDataset(small_graph)
        for t in trips[:13]:
            ds.add(t)
        # Shard 1's worker dies on its first replicated add, before acking.
        plan = FaultPlan(
            rules=[FaultRule(shard=1, op="kill_before", request=1, on="add")]
        )
        with make_engine(ds, edr_cost, fault_plan=plan) as engine:
            with pytest.raises(WorkerError):
                engine.add_trajectory(trips[13])  # gid 13 -> shard 1
            # The failed insert rolled back; retry lands on the respawned
            # worker with the same global id and becomes queryable.
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    gid = engine.add_trajectory(trips[13])
                    break
                except WorkerError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            assert gid == 13
            result = engine.query(list(trips[13].path[:6]), tau_ratio=0.25)
            assert any(m.trajectory_id == gid for m in result.matches)
            assert result.complete


class TestGracefulDegradation:
    def test_strict_mode_fails_loudly_when_a_shard_stays_down(
        self, vertex_dataset, edr_cost, rng
    ):
        with make_engine(
            vertex_dataset, edr_cost, num_shards=3, fault_plan=held_down(1)
        ) as engine:
            with pytest.raises(WorkerError):
                engine.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)

    def test_allow_partial_serves_live_shards_flagged_incomplete(
        self, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        with make_engine(vertex_dataset, edr_cost, num_shards=3) as undisturbed:
            full = undisturbed.query(query, tau_ratio=0.25)
        with make_engine(
            vertex_dataset, edr_cost, num_shards=3, fault_plan=held_down(1)
        ) as engine:
            partial = engine.query(query, tau_ratio=0.25, allow_partial=True)
            assert not partial.complete
            assert partial.degraded_shards == (1,)
            # The live shards' matches are exactly the full answer minus
            # shard 1's trajectories (round-robin: gid % 3 == 1).
            expected = [m for m in full.matches if m.trajectory_id % 3 != 1]
            assert keys(partial) == [
                (m.trajectory_id, m.start, m.end) for m in expected
            ]

    def test_all_shards_down_raises_even_with_allow_partial(
        self, vertex_dataset, edr_cost, rng
    ):
        plan = FaultPlan(
            rules=[
                rule
                for shard in (0, 1)
                for rule in held_down(shard).rules
            ]
        )
        with make_engine(vertex_dataset, edr_cost, fault_plan=plan) as engine:
            with pytest.raises(ShardUnavailableError):
                engine.query(
                    sample_query(vertex_dataset, rng, 6),
                    tau_ratio=0.25,
                    allow_partial=True,
                )

    def test_merge_accepts_none_for_degraded_shards(
        self, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        with make_engine(vertex_dataset, edr_cost, num_shards=3) as engine:
            calls = engine.shard_query_callables(query, tau_ratio=0.25)
            results = [call() for call in calls]
            merged = engine.merge_shard_results([results[0], None, results[2]])
            assert not merged.complete
            assert merged.degraded_shards == (1,)
            with pytest.raises(ShardUnavailableError):
                engine.merge_shard_results([None, None, None])
            with pytest.raises(QueryError):
                engine.merge_shard_results(results[:2])

    def test_breaker_opens_and_fails_fast_then_recovers(
        self, vertex_dataset, edr_cost, rng
    ):
        # Shard 1 is held down for 3 respawns; breaker (threshold 2,
        # cooldown 0.2 s) opens, then a half-open probe after recovery
        # closes it and the engine serves complete answers again.
        plan = FaultPlan(
            rules=[
                FaultRule(shard=1, op="kill_before", request=1),
                FaultRule(shard=1, op="fail_respawn", count=3),
            ]
        )
        query = sample_query(vertex_dataset, rng, 6)
        with make_engine(
            vertex_dataset,
            edr_cost,
            fault_plan=plan,
            breaker_failures=2,
            breaker_cooldown=0.2,
            respawn_backoff=0.01,
            respawn_backoff_cap=0.05,
        ) as engine:
            partial = engine.query(query, tau_ratio=0.25, allow_partial=True)
            assert not partial.complete
            # Hammer until the breaker opens (each degraded pass may
            # record one more failure).
            deadline = time.monotonic() + 10.0
            while engine._workers._breakers[1].state != "open":
                engine.query(query, tau_ratio=0.25, allow_partial=True)
                assert time.monotonic() < deadline, "breaker never opened"
            # Once the respawn-failure budget drains, the supervisor
            # brings the worker back and a probe closes the breaker.
            deadline = time.monotonic() + 20.0
            while True:
                result = engine.query(query, tau_ratio=0.25, allow_partial=True)
                if result.complete:
                    break
                assert time.monotonic() < deadline, "shard never recovered"
                time.sleep(0.05)
            assert engine._workers._breakers[1].state == "closed"


class TestPoolHardening:
    """Satellites: stop escalation, dead-worker try_call, guarded sends."""

    def test_try_call_on_dead_worker_raises_not_hangs(
        self, vertex_dataset, edr_cost
    ):
        shards = [vertex_dataset]
        pool = ShardWorkerPool(shards, edr_cost, {}, supervise=False)
        try:
            pool._workers[0]._process.kill()
            pool._workers[0]._process.join(5)
            t0 = time.monotonic()
            with pytest.raises(WorkerError):
                pool._workers[0].try_call("stats", ())
            assert time.monotonic() - t0 < 2.0
            # cache_stats degrades the dead worker to None instead of
            # failing the whole (healthz) probe.
            assert pool.cache_stats() == [None]
        finally:
            pool.close()

    def test_stop_escalates_to_sigkill_on_wedged_worker(
        self, vertex_dataset, edr_cost
    ):
        # wedge_stop: the worker ignores SIGTERM and "stop" requests —
        # only the final SIGKILL in the escalation chain can end it.
        plan = FaultPlan(rules=[FaultRule(shard=0, op="wedge_stop")])
        pool = ShardWorkerPool(
            shards := [vertex_dataset],
            edr_cost,
            {},
            supervise=False,
            fault_plan=plan,
        )
        assert len(shards) == 1
        worker = pool._workers[0]
        assert worker.alive
        t0 = time.monotonic()
        worker.stop(timeout=0.5)
        elapsed = time.monotonic() - t0
        # join() after kill reaps the child: no zombie left behind.
        assert not worker.alive
        assert worker._process.exitcode is not None, "zombie worker"
        assert worker._process.exitcode < 0  # killed by signal
        assert elapsed < 10.0
        pool.close()

    def test_injected_faults_exit_with_the_fault_code(
        self, vertex_dataset, edr_cost, rng
    ):
        plan = FaultPlan(rules=[FaultRule(shard=0, op="kill_before", request=1)])
        pool = ShardWorkerPool(
            [vertex_dataset], edr_cost, {}, supervise=False, fault_plan=plan
        )
        try:
            with pytest.raises(WorkerError):
                pool.query_all([0, 1, 2], {"tau": 2.0})
            pool._workers[0]._process.join(5)
            assert pool._workers[0]._process.exitcode == FAULT_EXIT_CODE
        finally:
            pool.close()

    def test_worker_states_snapshot_shape(self, vertex_dataset, edr_cost):
        with make_engine(vertex_dataset, edr_cost) as engine:
            states = engine.worker_states()
            assert [s.shard for s in states] == [0, 1]
            assert all(s.alive and s.breaker == "closed" for s in states)
            d = states[0].to_dict()
            assert {"shard", "alive", "pid", "restarts", "breaker"} <= set(d)

    def test_in_process_backends_report_synthetic_worker_states(
        self, vertex_dataset, edr_cost
    ):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, backend="serial"
        )
        try:
            states = engine.worker_states()
            assert all(s.alive and s.restarts == 0 for s in states)
            assert engine.restarts_total() == 0
        finally:
            engine.close()

    def test_fault_plan_rejected_on_in_process_backends(
        self, vertex_dataset, edr_cost
    ):
        with pytest.raises(QueryError, match="fault_plan"):
            PartitionedSubtrajectorySearch(
                vertex_dataset,
                edr_cost,
                backend="serial",
                fault_plan=FaultPlan(),
            )


# ---------------------------------------------------------------------------
# Service + HTTP integration
# ---------------------------------------------------------------------------


@pytest.fixture()
def degraded_service(vertex_dataset, edr_cost):
    from repro.service import QueryService

    engine = make_engine(
        vertex_dataset, edr_cost, num_shards=3, fault_plan=held_down(1)
    )
    service = QueryService(engine, cache_size=64)
    yield service
    service.close(close_engine=True)


class TestServiceDegradation:
    def test_partial_answers_are_never_cached_as_complete(
        self, degraded_service, vertex_dataset, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        response = degraded_service.query(query, tau_ratio=0.25, allow_partial=True)
        assert not response.result.complete
        assert not response.cached
        assert len(degraded_service.cache) == 0
        # A strict follow-up of the same request must NOT be served the
        # partial answer: it recomputes and fails loudly.
        with pytest.raises(WorkerError):
            degraded_service.query(query, tau_ratio=0.25)

    def test_degraded_query_counter_increments(
        self, degraded_service, vertex_dataset, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        degraded_service.query(query, tau_ratio=0.25, allow_partial=True)
        rendered = degraded_service.observability.registry.render()
        assert "repro_degraded_queries_total 1" in rendered

    def test_metrics_export_worker_and_breaker_state(
        self, degraded_service, vertex_dataset, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        degraded_service.query(query, tau_ratio=0.25, allow_partial=True)
        rendered = degraded_service.observability.registry.render()
        assert 'repro_worker_up{shard="1"} 0' in rendered
        assert 'repro_worker_up{shard="0"} 1' in rendered
        assert "repro_worker_restarts_total" in rendered
        assert "repro_shard_breaker_state" in rendered


class TestHTTPDegradation:
    def test_http_503_strict_200_partial_and_healthz_workers(
        self, degraded_service, vertex_dataset, rng
    ):
        import urllib.error
        import urllib.request

        from repro.service import ServiceServer

        query = sample_query(vertex_dataset, rng, 6)
        with ServiceServer(degraded_service, port=0).start() as server:
            def post(payload):
                req = urllib.request.Request(
                    server.url + "/query",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return resp.status, json.loads(resp.read())

            # Default (strict): a downed shard is a 503, not a 500.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post({"path": query, "tau_ratio": 0.25})
            assert excinfo.value.code == 503

            # Opted in: 200 with the partial flag and the missing shards.
            status, body = post(
                {"path": query, "tau_ratio": 0.25, "allow_partial": True}
            )
            assert status == 200
            assert body["partial"] is True
            assert body["degraded_shards"] == [1]

            # /healthz: per-shard liveness, restart counts, degraded flag.
            with urllib.request.urlopen(
                server.url + "/healthz", timeout=30
            ) as resp:
                health = json.loads(resp.read())
            assert health["status"] == "degraded"
            workers = {w["shard"]: w for w in health["workers"]}
            assert workers[1]["alive"] is False
            assert workers[0]["alive"] is True
            assert "restarts" in workers[0]
            assert "restarts_total" in health

            # /metrics: the new families render.
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=30
            ) as resp:
                metrics = resp.read().decode()
            assert "repro_worker_restarts_total" in metrics
            assert "repro_shard_breaker_state" in metrics
            assert "repro_degraded_queries_total" in metrics

    def test_503_body_names_degraded_shards_and_retry_after(
        self, degraded_service, vertex_dataset, rng
    ):
        import urllib.error
        import urllib.request

        from repro.service import ServiceServer

        query = sample_query(vertex_dataset, rng, 6)
        with ServiceServer(degraded_service, port=0).start() as server:
            req = urllib.request.Request(
                server.url + "/query",
                data=json.dumps({"path": query, "tau_ratio": 0.25}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=30)
            err = excinfo.value
            assert err.code == 503
            # The body tells the client *which* shards are down and when
            # to come back; the header says the same thing in HTTP.
            body = json.loads(err.read())
            assert body["degraded_shards"] == [1]
            assert body["retry_after"] >= 1
            retry_header = err.headers.get("Retry-After")
            assert retry_header is not None
            assert int(retry_header) == body["retry_after"]

    def test_healthy_server_payload_says_complete(
        self, vertex_dataset, edr_cost, rng
    ):
        from repro.service import QueryService
        from repro.service.http import response_payload

        engine = make_engine(vertex_dataset, edr_cost)
        service = QueryService(engine, cache_size=16)
        try:
            query = sample_query(vertex_dataset, rng, 6)
            response = service.query(query, tau_ratio=0.25)
            payload = response_payload(response)
            assert payload["partial"] is False
            assert "degraded_shards" not in payload
        finally:
            service.close(close_engine=True)


class TestCLIFaultPlan:
    def test_serve_rejects_fault_plan_without_processes_backend(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="processes"):
            main(
                [
                    "serve",
                    "--self-test",
                    "--fault-plan",
                    FaultPlan().to_json(),
                ]
            )

    def test_serve_self_test_survives_a_kill_loop_fault_plan(self, capsys):
        from repro.cli import main

        plan = FaultPlan(
            rules=[FaultRule(shard=0, op="kill_before", request=1)]
        )
        code = main(
            [
                "serve",
                "--self-test",
                "--backend",
                "processes",
                "--shards",
                "2",
                "--fault-plan",
                plan.to_json(),
            ]
        )
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert out["self_test"] == "ok"
