"""End-to-end integration tests.

The heavyweight guarantee: on randomly generated road networks, datasets,
cost models, and queries, the engine's result set equals the exhaustive
Smith–Waterman oracle — across representations, selectors, verifiers, and
DP backends.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import (
    EDRCost,
    ERPCost,
    LevenshteinCost,
    SURSCost,
)
from repro.distance.smith_waterman import all_matches
from repro.network.generators import grid_city, random_city
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.generator import TripGenerator


def oracle_keys(dataset, query, costs, tau):
    out = set()
    for tid in range(len(dataset)):
        for s, t, _ in all_matches(dataset.symbols(tid), query, costs, tau):
            out.add((tid, s, t))
    return out


def engine_keys(result):
    return {(m.trajectory_id, m.start, m.end) for m in result.matches}


@st.composite
def random_workload(draw):
    """A small random world: network + trips + a query fragment."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    style = draw(st.sampled_from(["grid", "random"]))
    if style == "grid":
        graph = grid_city(
            draw(st.integers(4, 7)), draw(st.integers(4, 7)), seed=seed
        )
    else:
        graph = random_city(draw(st.integers(25, 60)), seed=seed)
    gen = TripGenerator(graph, seed=seed + 1)
    trips = gen.generate(draw(st.integers(5, 15)), min_length=4, max_length=20)
    # Clamp to the longest generated trip: min_length only bounds trips at
    # 4, so an unclamped draw of 5-6 can leave no eligible base trajectory.
    qlen = min(draw(st.integers(2, 6)), max(len(t) for t in trips))
    base = rng.choice([t for t in trips if len(t) >= qlen])
    s = rng.randrange(0, len(base) - qlen + 1)
    query = list(base.path[s : s + qlen])
    ratio = draw(st.sampled_from([0.15, 0.25, 0.4]))
    return graph, trips, query, ratio


class TestRandomWorlds:
    @given(random_workload())
    @settings(max_examples=25, deadline=None)
    def test_edr_engine_matches_oracle(self, workload):
        graph, trips, query, ratio = workload
        ds = TrajectoryDataset(graph, "vertex")
        ds.extend(trips)
        costs = EDRCost(graph, epsilon=graph.median_edge_weight())
        engine = SubtrajectorySearch(ds, costs)
        result = engine.query(query, tau_ratio=ratio)
        assert engine_keys(result) == oracle_keys(ds, query, costs, result.tau)

    @given(random_workload())
    @settings(max_examples=15, deadline=None)
    def test_erp_engine_matches_oracle(self, workload):
        graph, trips, query, ratio = workload
        ds = TrajectoryDataset(graph, "vertex")
        ds.extend(trips)
        costs = ERPCost(graph, eta=0.1 * graph.median_edge_weight())
        engine = SubtrajectorySearch(ds, costs)
        result = engine.query(query, tau_ratio=ratio)
        assert engine_keys(result) == oracle_keys(ds, query, costs, result.tau)

    @given(random_workload())
    @settings(max_examples=15, deadline=None)
    def test_surs_engine_matches_oracle(self, workload):
        graph, trips, query, ratio = workload
        ds = TrajectoryDataset(graph, "edge")
        ds.extend(trips)
        equery = graph.path_to_edges(query)
        costs = SURSCost(graph)
        engine = SubtrajectorySearch(ds, costs)
        result = engine.query(equery, tau_ratio=ratio)
        assert engine_keys(result) == oracle_keys(ds, equery, costs, result.tau)

    @given(random_workload())
    @settings(max_examples=15, deadline=None)
    def test_configuration_grid_consistency(self, workload):
        """Every engine configuration returns the same result set."""
        graph, trips, query, ratio = workload
        ds = TrajectoryDataset(graph, "vertex")
        ds.extend(trips)
        costs = LevenshteinCost()
        reference = None
        for selector in ("greedy", "prefix", "all"):
            for verification in ("trie", "local", "sw"):
                engine = SubtrajectorySearch(
                    ds, costs, selector=selector, verification=verification
                )
                keys = engine_keys(engine.query(query, tau_ratio=ratio))
                if reference is None:
                    reference = keys
                else:
                    assert keys == reference, (selector, verification)


class TestPipelineRoundTrips:
    def test_save_load_query_consistency(self, tmp_path, small_graph, trips):
        """Persisted network+dataset answer identically after reload."""
        from repro.network.io import load_network, save_network

        ds = TrajectoryDataset(small_graph, "vertex")
        ds.extend(trips)
        net_path = tmp_path / "net.txt"
        ds_path = tmp_path / "ds.jsonl"
        save_network(small_graph, net_path)
        ds.save(ds_path)
        graph2 = load_network(net_path)
        ds2 = TrajectoryDataset.load(graph2, ds_path)

        costs1 = EDRCost(small_graph, epsilon=60.0)
        costs2 = EDRCost(graph2, epsilon=60.0)
        e1 = SubtrajectorySearch(ds, costs1)
        e2 = SubtrajectorySearch(ds2, costs2)
        query = list(ds.symbols(0))[:6]
        assert engine_keys(e1.query(query, tau_ratio=0.25)) == engine_keys(
            e2.query(query, tau_ratio=0.25)
        )

    def test_incremental_indexing_matches_rebuild(self, small_graph, trips):
        """Appending to the dataset + index equals indexing from scratch."""
        from repro.core.invindex import InvertedIndex

        ds = TrajectoryDataset(small_graph, "vertex")
        ds.extend(trips[:20])
        index = InvertedIndex(ds)
        for t in trips[20:]:
            tid = ds.add(t)
            index.append_trajectory(tid)
        rebuilt = InvertedIndex(ds)
        for sym in set(s for tid in range(len(ds)) for s in ds.symbols(tid)):
            assert sorted(index.postings(sym)) == sorted(rebuilt.postings(sym))

    def test_mapmatch_feeds_engine(self, small_graph):
        """Noisy GPS -> map matching -> search returns the source trip."""
        from repro.trajectory.mapmatch import HMMMapMatcher
        from repro.trajectory.noise import gps_noise

        gen = TripGenerator(small_graph, seed=5, detour_prob=0.0)
        trips = gen.generate(10, min_length=6, max_length=20)
        matcher = HMMMapMatcher(small_graph, sigma=8.0, candidate_radius=60.0)
        ds = TrajectoryDataset(small_graph, "vertex")
        for i, trip in enumerate(trips):
            ds.add(matcher.match(gps_noise(small_graph, trip, sigma=5.0, seed=i)))
        engine = SubtrajectorySearch(ds, EDRCost(small_graph, epsilon=60.0))
        query = list(ds.symbols(0))[:5]
        result = engine.query(query, tau_ratio=0.3)
        assert any(m.trajectory_id == 0 for m in result.matches)
