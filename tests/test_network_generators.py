"""Synthetic network generators: structure and determinism."""

import pytest

from repro.network.generators import grid_city, radial_ring_city, random_city
from repro.network.shortest_path import dijkstra


def weakly_connected(graph) -> bool:
    """BFS over the undirected view reaches every vertex."""
    und = graph.undirected()
    seen = {0}
    stack = [0]
    while stack:
        u = stack.pop()
        for v in und.successors(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == graph.num_vertices


class TestGridCity:
    def test_size(self):
        g = grid_city(5, 6, seed=1)
        assert g.num_vertices == 30
        assert g.num_edges > 0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            grid_city(1, 5)

    def test_deterministic(self):
        a = grid_city(6, 6, seed=9)
        b = grid_city(6, 6, seed=9)
        assert a.num_edges == b.num_edges
        assert [e.weight for e in a.edges] == [e.weight for e in b.edges]

    def test_seed_changes_output(self):
        a = grid_city(6, 6, seed=1)
        b = grid_city(6, 6, seed=2)
        assert [a.coord(i) for i in range(5)] != [b.coord(i) for i in range(5)]

    def test_weakly_connected(self):
        assert weakly_connected(grid_city(8, 8, seed=3))

    def test_sparse_out_degree(self):
        g = grid_city(10, 10, seed=4)
        avg_out = sum(g.out_degree(v) for v in range(g.num_vertices)) / g.num_vertices
        assert 1.0 < avg_out < 5.0  # road-network sparsity (§5.2)

    def test_positive_weights(self):
        g = grid_city(6, 6, seed=5)
        assert all(e.weight > 0 for e in g.edges)

    def test_strongly_connected_enough_for_routing(self):
        g = grid_city(8, 8, seed=6)
        dist, _ = dijkstra(g, 0)
        reachable = sum(1 for d in dist if d < float("inf"))
        assert reachable > g.num_vertices * 0.9


class TestRadialRingCity:
    def test_size(self):
        g = radial_ring_city(3, 8, seed=1)
        assert g.num_vertices == 1 + 3 * 8

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            radial_ring_city(0, 8)
        with pytest.raises(ValueError):
            radial_ring_city(2, 2)

    def test_weakly_connected(self):
        assert weakly_connected(radial_ring_city(4, 10, seed=2))

    def test_center_reaches_outer_ring(self):
        g = radial_ring_city(3, 6, seed=3)
        dist, _ = dijkstra(g, 0)
        assert max(d for d in dist if d < float("inf")) > 0
        assert all(d < float("inf") for d in dist)


class TestRandomCity:
    def test_size(self):
        g = random_city(100, seed=1)
        assert g.num_vertices == 100

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_city(1)

    def test_weakly_connected(self):
        assert weakly_connected(random_city(150, seed=2))

    def test_deterministic(self):
        a = random_city(80, seed=7)
        b = random_city(80, seed=7)
        assert a.num_edges == b.num_edges

    def test_coordinates_within_extent(self):
        g = random_city(60, extent=1000.0, seed=3)
        for v in range(g.num_vertices):
            x, y = g.coord(v)
            assert 0 <= x <= 1000 and 0 <= y <= 1000
