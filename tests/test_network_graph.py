"""Road network graph container tests."""

import pytest

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork


@pytest.fixture()
def triangle():
    g = RoadNetwork()
    a = g.add_vertex((0, 0))
    b = g.add_vertex((3, 0))
    c = g.add_vertex((0, 4))
    g.add_edge(a, b)  # weight 3 (Euclidean)
    g.add_edge(b, c)  # weight 5
    g.add_edge(c, a)  # weight 4
    return g


class TestConstruction:
    def test_vertex_ids_dense(self):
        g = RoadNetwork()
        assert [g.add_vertex((i, 0)) for i in range(3)] == [0, 1, 2]

    def test_default_weight_is_euclidean(self, triangle):
        assert triangle.edge(0).weight == pytest.approx(3.0)
        assert triangle.edge(1).weight == pytest.approx(5.0)

    def test_explicit_weight(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        g.add_vertex((1, 0))
        eid = g.add_edge(0, 1, 42.0)
        assert g.edge(eid).weight == 42.0

    def test_self_loop_rejected(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        with pytest.raises(GraphError):
            g.add_edge(0, 0)

    def test_duplicate_edge_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_edge(0, 1)

    def test_negative_weight_rejected(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        g.add_vertex((1, 0))
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1.0)

    def test_unknown_vertex_rejected(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        with pytest.raises(GraphError):
            g.add_edge(0, 5)


class TestAccessors:
    def test_counts(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3

    def test_coord(self, triangle):
        assert triangle.coord(2) == (0.0, 4.0)
        with pytest.raises(GraphError):
            triangle.coord(9)

    def test_edge_id_lookup(self, triangle):
        assert triangle.edge_id(0, 1) == 0
        with pytest.raises(GraphError):
            triangle.edge_id(1, 0)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_successors_predecessors(self, triangle):
        assert triangle.successors(0) == [1]
        assert triangle.predecessors(0) == [2]

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.degree(0) == 2

    def test_out_in_edges(self, triangle):
        assert [e.target for e in triangle.out_edges(1)] == [2]
        assert [e.source for e in triangle.in_edges(1)] == [0]


class TestPathHelpers:
    def test_is_path(self, triangle):
        assert triangle.is_path([0, 1, 2, 0])
        assert not triangle.is_path([0, 2])

    def test_path_edge_round_trip(self, triangle):
        path = [0, 1, 2, 0]
        edges = triangle.path_to_edges(path)
        assert triangle.edges_to_path(edges) == path

    def test_edges_to_path_disconnected_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.edges_to_path([0, 2])  # edge 2 starts at c, not b

    def test_edges_to_path_empty(self, triangle):
        assert triangle.edges_to_path([]) == []

    def test_path_length(self, triangle):
        assert triangle.path_length([0, 1, 2]) == pytest.approx(8.0)
        assert triangle.path_length([0]) == 0.0


class TestUndirectedView:
    def test_adds_reverse_edges(self, triangle):
        u = triangle.undirected()
        assert u.num_vertices == 3
        assert u.num_edges == 6
        assert u.has_edge(1, 0) and u.has_edge(0, 1)

    def test_preserves_existing_reverse_weight(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        g.add_vertex((1, 0))
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 0, 9.0)
        u = g.undirected()
        assert u.edge(u.edge_id(0, 1)).weight == 2.0
        assert u.edge(u.edge_id(1, 0)).weight == 9.0

    def test_reverse_twin_copies_forward_weight(self, triangle):
        u = triangle.undirected()
        assert u.edge(u.edge_id(1, 0)).weight == pytest.approx(3.0)


class TestMedianEdgeWeight:
    def test_median(self):
        g = RoadNetwork()
        for i in range(4):
            g.add_vertex((i, 0))
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 5.0)
        g.add_edge(2, 3, 9.0)
        assert g.median_edge_weight() == 5.0

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            RoadNetwork().median_edge_weight()
