"""Hub labeling: exactness against Dijkstra on assorted graphs."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.generators import grid_city, radial_ring_city, random_city
from repro.network.graph import RoadNetwork
from repro.network.hub_labeling import HubLabeling
from repro.network.shortest_path import dijkstra


def check_exact(graph, samples=40, seed=0):
    hl = HubLabeling(graph)
    rng = random.Random(seed)
    for _ in range(samples):
        u = rng.randrange(graph.num_vertices)
        dist, _ = dijkstra(graph, u)
        v = rng.randrange(graph.num_vertices)
        got = hl.query(u, v)
        if math.isinf(dist[v]):
            assert math.isinf(got)
        else:
            assert got == pytest.approx(dist[v])


class TestExactness:
    def test_grid(self):
        check_exact(grid_city(7, 7, seed=1), seed=1)

    def test_irregular(self):
        check_exact(random_city(90, seed=2), seed=2)

    def test_radial(self):
        check_exact(radial_ring_city(3, 9, seed=3), seed=3)

    def test_one_way_heavy_directed_graph(self):
        check_exact(grid_city(6, 6, one_way_prob=0.5, seed=4), seed=4)

    def test_disconnected_components(self):
        g = RoadNetwork()
        for i in range(4):
            g.add_vertex((i, 0))
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        hl = HubLabeling(g)
        assert hl.query(0, 1) == 1.0
        assert math.isinf(hl.query(0, 3))

    def test_self_distance_zero(self):
        g = grid_city(4, 4, seed=5)
        hl = HubLabeling(g)
        for v in range(g.num_vertices):
            assert hl.query(v, v) == 0.0


@st.composite
def random_weighted_digraph(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    g = RoadNetwork()
    for i in range(n):
        g.add_vertex((float(i), 0.0))
    n_edges = draw(st.integers(min_value=1, max_value=min(40, n * (n - 1))))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    for a, b in pairs:
        if a != b and not g.has_edge(a, b):
            w = draw(st.floats(min_value=0.1, max_value=50.0))
            g.add_edge(a, b, w)
    return g


class TestPropertyBased:
    @given(random_weighted_digraph())
    @settings(max_examples=40, deadline=None)
    def test_matches_dijkstra_everywhere(self, graph):
        hl = HubLabeling(graph)
        for u in range(graph.num_vertices):
            dist, _ = dijkstra(graph, u)
            for v in range(graph.num_vertices):
                got = hl.query(u, v)
                if math.isinf(dist[v]):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(dist[v])


class TestLabelSize:
    def test_labels_smaller_than_all_pairs(self):
        g = grid_city(8, 8, seed=6)
        hl = HubLabeling(g)
        n = g.num_vertices
        assert 0 < hl.label_count < n * n
