"""Network serialization round trips."""

import pytest

from repro.exceptions import GraphError
from repro.network.generators import grid_city
from repro.network.io import load_network, save_network


class TestRoundTrip:
    def test_round_trip(self, tmp_path):
        g = grid_city(6, 6, seed=3)
        path = tmp_path / "net.txt"
        save_network(g, path)
        g2 = load_network(path)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        for v in range(g.num_vertices):
            assert g2.coord(v) == g.coord(v)
        for e, e2 in zip(g.edges, g2.edges):
            assert (e.source, e.target) == (e2.source, e2.target)
            assert e.weight == e2.weight

    def test_weights_exact_after_round_trip(self, tmp_path):
        # repr() round-trips floats exactly; verify a non-representable value.
        g = grid_city(3, 3, seed=1)
        path = tmp_path / "net.txt"
        save_network(g, path)
        g2 = load_network(path)
        assert [e.weight for e in g.edges] == [e.weight for e in g2.edges]


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text('{"magic": "nope"}\n')
        with pytest.raises(GraphError):
            load_network(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not json\n")
        with pytest.raises(GraphError):
            load_network(path)

    def test_truncated(self, tmp_path):
        g = grid_city(3, 3, seed=1)
        path = tmp_path / "net.txt"
        save_network(g, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(GraphError):
            load_network(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text(
            '{"magic": "repro-network-v1", "num_vertices": 0, "num_edges": 0}\n'
            "x 1 2\n"
        )
        with pytest.raises(GraphError):
            load_network(path)
