"""Shortest-path algorithms validated against networkx."""

import math
import random

import networkx as nx
import pytest

from repro.network.generators import grid_city, random_city
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    bidirectional_dijkstra,
    bounded_dijkstra,
    dijkstra,
    shortest_path,
)


def to_networkx(graph: RoadNetwork) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for e in graph.edges:
        g.add_edge(e.source, e.target, weight=e.weight)
    return g


@pytest.fixture(scope="module")
def city():
    return grid_city(9, 9, seed=17)


@pytest.fixture(scope="module")
def nx_city(city):
    return to_networkx(city)


class TestDijkstra:
    def test_matches_networkx(self, city, nx_city):
        for source in (0, 13, 40):
            dist, _ = dijkstra(city, source)
            want = nx.single_source_dijkstra_path_length(nx_city, source)
            for v in range(city.num_vertices):
                if v in want:
                    assert dist[v] == pytest.approx(want[v])
                else:
                    assert math.isinf(dist[v])

    def test_parents_form_shortest_paths(self, city):
        dist, parent = dijkstra(city, 0)
        for v in range(city.num_vertices):
            if parent[v] >= 0:
                w = city.edge(city.edge_id(parent[v], v)).weight
                assert dist[v] == pytest.approx(dist[parent[v]] + w)

    def test_source_distance_zero(self, city):
        dist, parent = dijkstra(city, 5)
        assert dist[5] == 0.0
        assert parent[5] == -1


class TestBoundedDijkstra:
    def test_negative_radius_rejected(self, city):
        with pytest.raises(ValueError):
            bounded_dijkstra(city, 0, -1.0)

    def test_subset_of_full_dijkstra(self, city):
        full, _ = dijkstra(city, 10)
        radius = 250.0
        near = bounded_dijkstra(city, 10, radius)
        want = {v: d for v, d in enumerate(full) if d <= radius}
        assert near == pytest.approx(want)

    def test_zero_radius(self, city):
        assert bounded_dijkstra(city, 3, 0.0) == {3: 0.0}

    def test_monotone_in_radius(self, city):
        small = bounded_dijkstra(city, 7, 100.0)
        large = bounded_dijkstra(city, 7, 400.0)
        assert set(small) <= set(large)


class TestBidirectional:
    def test_matches_networkx(self, city, nx_city):
        rng = random.Random(3)
        for _ in range(30):
            u = rng.randrange(city.num_vertices)
            v = rng.randrange(city.num_vertices)
            got = bidirectional_dijkstra(city, u, v)
            try:
                want = nx.dijkstra_path_length(nx_city, u, v)
            except nx.NetworkXNoPath:
                want = math.inf
            assert got == pytest.approx(want)

    def test_same_vertex(self, city):
        assert bidirectional_dijkstra(city, 4, 4) == 0.0

    def test_disconnected(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        g.add_vertex((1, 0))
        assert math.isinf(bidirectional_dijkstra(g, 0, 1))

    def test_irregular_city(self):
        city = random_city(120, seed=8)
        nxg = to_networkx(city)
        rng = random.Random(4)
        for _ in range(20):
            u, v = rng.randrange(120), rng.randrange(120)
            got = bidirectional_dijkstra(city, u, v)
            try:
                want = nx.dijkstra_path_length(nxg, u, v)
            except nx.NetworkXNoPath:
                want = math.inf
            assert got == pytest.approx(want)


class TestShortestPath:
    def test_path_is_valid_and_optimal(self, city, nx_city):
        rng = random.Random(5)
        for _ in range(15):
            u, v = rng.randrange(city.num_vertices), rng.randrange(city.num_vertices)
            path = shortest_path(city, u, v)
            try:
                want = nx.dijkstra_path_length(nx_city, u, v)
            except nx.NetworkXNoPath:
                assert path is None
                continue
            assert path is not None
            assert path[0] == u and path[-1] == v
            assert city.is_path(path)
            assert city.path_length(path) == pytest.approx(want)

    def test_trivial_path(self, city):
        assert shortest_path(city, 2, 2) == [2]

    def test_disconnected_returns_none(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        g.add_vertex((1, 0))
        assert shortest_path(g, 0, 1) is None
