"""Prometheus-text metrics (ISSUE 6): instruments, exposition, scraping.

Pins the hand-rolled exposition layer against the text format 0.0.4
contract a real Prometheus scraper parses: ``# HELP`` / ``# TYPE``
preambles, cumulative histogram buckets ending in ``le="+Inf"`` with
matching ``_sum`` / ``_count``, label escaping, and every sample line
shaped ``name{labels} value``.  Then scrapes a live ``/metrics`` endpoint
and validates the whole body line by line — including the per-shard trie
cache bytes (satellite 1's corrected accounting) and the per-exception
error labels (satellite 2).
"""

import json
import re
import urllib.request

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.exceptions import QueryError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.service import QueryService, ServiceServer

_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'  # value may hold \" \\ \n
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
    r"(\{" + _LABEL + r"(," + _LABEL + r")*\})?"
    r" (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"    # value
)


def assert_valid_exposition(text: str) -> None:
    """Every line is a comment or a well-formed sample; every sample's
    metric family was announced by # TYPE first."""
    announced = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            announced.add(line.split()[2])
            continue
        if line.startswith("# HELP ") or not line.strip():
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in announced or family in announced, (
            f"sample {name} not announced by # TYPE"
        )


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("c_total", "help", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0

    def test_counter_rejects_bad_usage(self):
        counter = Counter("c_total", "help", labelnames=("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing label
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="b")
        with pytest.raises(ValueError):
            counter.inc(-1.0, kind="a")  # counters only go up

    def test_gauge_sets(self):
        gauge = Gauge("g", "help")
        gauge.set(3.0)
        gauge.set(-1.5)
        assert gauge.value() == -1.5

    def test_histogram_places_observations_and_tracks_sum(self):
        hist = Histogram("h", "help", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        ((labels, counts, total),) = hist.snapshot()
        assert labels == {}
        assert counts == [1, 2, 1, 1]  # raw per-bucket; render cumulates
        assert total == pytest.approx(56.05)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(1.0, 0.5))


class TestRegistryRendering:
    def test_render_is_valid_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_c_total", "Counted.", labelnames=("k",))
        gauge = registry.gauge("repro_g", "Gauged.")
        hist = registry.histogram("repro_h", "Histogrammed.", buckets=(0.1, 1.0))
        counter.inc(k='weird"label\\with\nstuff')
        gauge.set(4.0)
        hist.observe(0.5)
        registry.register_collector(
            lambda: [("repro_pulled", "gauge", "Pulled.", [({"shard": "0"}, 7.0)])]
        )
        text = registry.render()
        assert_valid_exposition(text)
        assert '# TYPE repro_c_total counter' in text
        # Label escaping: backslash, quote, newline.
        assert 'k="weird\\"label\\\\with\\nstuff"' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_sum 0.5" in text
        assert "repro_h_count 1" in text
        assert 'repro_pulled{shard="0"} 7' in text

    def test_unlabeled_instruments_render_zero_before_first_use(self):
        registry = MetricsRegistry()
        registry.counter("repro_idle_total", "Never incremented.")
        text = registry.render()
        assert "repro_idle_total 0" in text

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", "x again")


@pytest.fixture()
def served(vertex_dataset, netedr_cost):
    engine = SubtrajectorySearch(vertex_dataset, netedr_cost, dp_backend="numpy")
    service = QueryService(engine, trace_sample_rate=1.0)
    server = ServiceServer(service).start()
    yield server, service
    server.shutdown()


def _scrape(server) -> str:
    with urllib.request.urlopen(server.url + "/metrics", timeout=10) as response:
        assert response.status == 200
        content_type = response.headers["Content-Type"]
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        return response.read().decode("utf-8")


class TestMetricsEndpoint:
    def test_scrape_is_valid_and_reflects_traffic(self, served, vertex_dataset):
        server, service = served
        query = list(vertex_dataset.symbols(0))[:8]
        service.query(query, tau_ratio=0.3)
        service.query(query, tau_ratio=0.3)  # result-cache hit
        text = _scrape(server)
        assert_valid_exposition(text)
        assert 'repro_queries_total{outcome="computed"} 1' in text
        assert 'repro_queries_total{outcome="cached"} 1' in text
        assert 'repro_queries_by_dp_backend_total{dp_backend="numpy"} 1' in text
        assert 'repro_query_latency_seconds_bucket' in text
        assert "repro_query_candidates_count 1" in text
        assert "repro_traces_sampled_total 2" in text
        # Satellite 1: measured trie bytes, per shard, on the wire.
        match = re.search(
            r'^repro_trie_cache_bytes\{shard="0"\} (\d+)$', text, re.M
        )
        assert match is not None
        assert int(match.group(1)) > 0
        assert int(match.group(1)) == service.engine.trie_cache_stats()["bytes"]
        assert 'repro_substitution_cache_hits_total{shard="0"}' in text

    def test_errors_are_labelled_by_exception_type(self, served):
        server, service = served
        with pytest.raises(QueryError):
            service.query([], tau_ratio=0.3)
        text = _scrape(server)
        assert 'repro_errors_total{type="QueryError"} 1' in text
        # Satellite 2: /stats keeps the aggregate AND gains the breakdown.
        stats = service.stats()
        assert stats["errors"] == 1
        assert stats["errors_by_type"] == {"QueryError": 1}

    def test_stats_and_healthz_unchanged_shapes(self, served):
        server, _ = served
        for path in ("/stats", "/healthz"):
            with urllib.request.urlopen(server.url + path, timeout=10) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
            assert isinstance(payload, dict)
        assert "queries" in json.loads(
            urllib.request.urlopen(server.url + "/stats", timeout=10)
            .read()
            .decode("utf-8")
        )
