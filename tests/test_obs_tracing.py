"""End-to-end query tracing (ISSUE 6): spans, stitching, flight recorder.

The tentpole contract this suite pins:

- tracing primitives: sampling decided once per request (rate 0 returns
  ``None``), spans exported root-relative and re-anchored when grafted
  across the process boundary, renderers rebuilding the tree from flat
  records;
- a 2-shard **processes**-backend query through the HTTP frontend yields
  ONE stitched trace — per-shard child spans under ``execute``, each
  carrying the worker's own engine-stage spans — retrievable from
  ``/debug/traces`` and rendered by ``repro trace``;
- warm vs cold trie-cache state is visible in verify-span attributes
  (``trie_cache=miss`` on first contact, ``hit`` on the repeat);
- slow queries are preserved even at sample rate 0: a synthesized
  stage-breakdown trace lands in the recorder and a one-line JSON record
  on the ``repro.slowlog`` logger.
"""

import json
import logging
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.obs import (
    FlightRecorder,
    Trace,
    Tracer,
    render_trace,
    slow_query_record,
    synthesize_trace,
)
from repro.service import QueryService, ServiceServer


class TestTracer:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(0.0)
        assert all(tracer.start("query") is None for _ in range(100))

    def test_rate_one_always_samples(self):
        tracer = Tracer(1.0)
        traces = [tracer.start("query") for _ in range(10)]
        assert all(t is not None for t in traces)
        assert len({t.trace_id for t in traces}) == 10

    def test_fractional_rate_is_deterministic_and_proportional(self):
        first, second = Tracer(0.25), Tracer(0.25)
        a = [first.start("q") is not None for _ in range(400)]
        b = [second.start("q") is not None for _ in range(400)]
        assert a == b  # Weyl counter: reproducible per-ordinal decisions
        assert 0 < sum(a) < 400
        # Equidistributed increment: the hit count tracks the rate.
        assert 60 <= sum(a) <= 140

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(1.5)


class TestSpans:
    def test_child_and_replayed_spans_share_the_tree(self):
        trace = Trace("request", kind="test")
        child = trace.root.child("stage", shard=0)
        child.finish()
        trace.root.add("replayed", child.start, child.end, n=3)
        trace.finish()
        exported = trace.export()
        assert [s["name"] for s in exported] == ["request", "stage", "replayed"]
        assert all(s["parent_id"] == trace.root.span_id for s in exported[1:])
        # Root-relative starts: the root exports at 0.
        assert exported[0]["start"] == 0.0
        assert exported[1]["start"] >= 0.0

    def test_finish_is_idempotent(self):
        trace = Trace("request")
        trace.finish()
        end = trace.root.end
        trace.finish()
        assert trace.root.end == end

    def test_graft_reanchors_remote_spans(self):
        parent = Trace("request")
        rpc = parent.root.child("shard", shard=1)
        # The "remote" side: a worker trace continuing this context.
        trace_id, parent_id = rpc.context()
        remote = Trace("shard_worker", trace_id=trace_id, parent_id=parent_id)
        remote.root.add("verify", remote.root.start, remote.root.start + 0.5)
        remote.finish()
        rpc.graft(remote.export())
        rpc.finish()
        parent.finish()
        record = parent.to_dict()
        assert record["trace_id"] == trace_id == remote.trace_id
        by_name = {s["name"]: s for s in record["spans"]}
        # Stitched: the worker root hangs off the RPC span, the worker's
        # stage span hangs off the worker root.
        assert by_name["shard_worker"]["parent_id"] == rpc.span_id
        assert (
            by_name["verify"]["parent_id"] == by_name["shard_worker"]["span_id"]
        )
        # Re-anchored onto the local clock at the RPC span's start.
        root_rel = rpc.start - parent.root.start
        assert by_name["shard_worker"]["start"] == pytest.approx(root_rel)

    def test_unfinished_span_exports_zero_duration(self):
        trace = Trace("request")
        trace.root.child("never_finished")
        trace.finish()
        spans = {s["name"]: s for s in trace.export()}
        assert spans["never_finished"]["duration"] == 0.0


class TestFlightRecorderAndRendering:
    @staticmethod
    def _record(duration, name="query"):
        return synthesize_trace(name, seconds=duration, stages=[])

    def test_recent_ring_and_slowest_heap_are_bounded(self):
        recorder = FlightRecorder(recent=3, slowest=2)
        for duration in (0.5, 0.1, 0.9, 0.2, 0.3):
            recorder.record(self._record(duration))
        assert [t["duration"] for t in recorder.recent()] == [0.3, 0.2, 0.9]
        assert [t["duration"] for t in recorder.slowest()] == [0.9, 0.5]
        assert recorder.stats() == {"recorded": 5, "recent": 3, "slowest": 2}
        assert len(recorder.recent(limit=1)) == 1

    def test_render_trace_indents_by_parenthood(self):
        trace = Trace("request")
        shard = trace.root.child("shard", shard=0)
        shard.add("verify", shard.start, shard.start + 0.001, candidates=4)
        shard.finish()
        trace.finish()
        text = render_trace(trace.to_dict())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace.trace_id}")
        assert lines[1].startswith("- request")
        assert lines[2].startswith("  - shard")
        assert "[shard=0]" in lines[2]
        assert lines[3].startswith("    - verify")
        assert "candidates=4" in lines[3]

    def test_synthesized_record_renders_with_marker(self):
        record = synthesize_trace(
            "query",
            seconds=0.01,
            stages=[("verify", 0.008, {"dp_backend": "numpy"})],
            outcome="computed",
        )
        text = render_trace(record)
        assert "(synthesized)" in text
        assert "dp_backend=numpy" in text

    def test_slow_query_record_is_flat(self):
        record = slow_query_record(
            {"trace_id": "abc"}, seconds=0.2, threshold=0.1, cached=False
        )
        assert record["event"] == "slow_query"
        assert record["trace_id"] == "abc"
        assert json.loads(json.dumps(record)) == record  # JSON-safe


@pytest.fixture(scope="module")
def traced_server(vertex_dataset, netedr_cost):
    """A fully-sampled service over a 2-shard processes engine."""
    engine = PartitionedSubtrajectorySearch(
        vertex_dataset,
        netedr_cost,
        num_shards=2,
        backend="processes",
        dp_backend="numpy",
        trie_cache_size=8,
    )
    service = QueryService(engine, trace_sample_rate=1.0)
    server = ServiceServer(service).start()
    yield server, service, engine
    server.shutdown()
    engine.close()


def _http_query(server, path, tau_ratio):
    body = json.dumps({"path": path, "tau_ratio": tau_ratio}).encode("utf-8")
    request = urllib.request.Request(
        server.url + "/query",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def _debug_traces(server, **params):
    query = "&".join(f"{k}={v}" for k, v in params.items())
    url = server.url + "/debug/traces" + (f"?{query}" if query else "")
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


class TestStitchedProcessTraces:
    """The acceptance path: HTTP query → one stitched cross-process tree."""

    def test_http_query_yields_one_stitched_trace(self, traced_server, vertex_dataset):
        server, service, engine = traced_server
        query = list(vertex_dataset.symbols(0))[:8]
        _http_query(server, query, 0.3)   # cold: trie cache misses
        _http_query(server, query, 0.45)  # warm: same entry, cache hit
        payload = _debug_traces(server, order="recent", limit=2)
        warm_record, cold_record = payload["traces"]

        for record in (cold_record, warm_record):
            spans = record["spans"]
            names = [s["name"] for s in spans]
            # One tree: serving stages and both shards' worker spans in
            # the SAME trace, every span reachable from the root.
            for expected in ("query", "cache_lookup", "admission", "execute"):
                assert expected in names
            shard_spans = [s for s in spans if s["name"] == "shard"]
            assert len(shard_spans) == 2
            assert {s["attributes"]["shard"] for s in shard_spans} == {0, 1}
            worker_spans = [s for s in spans if s["name"] == "shard_worker"]
            assert len(worker_spans) == 2
            by_id = {s["span_id"]: s for s in spans}
            shard_ids = {s["span_id"] for s in shard_spans}
            assert {s["parent_id"] for s in worker_spans} == shard_ids
            verify = [s for s in spans if s["name"] == "verify"]
            assert len(verify) == 2
            assert all(
                by_id[s["parent_id"]]["name"] == "shard_worker" for s in verify
            )
            assert all(
                s["attributes"]["dp_backend"] == "numpy" for s in verify
            )

        # Satellite 4's teeth: cold vs warm trie-cache status, per shard,
        # visible in the stitched span attributes.
        def statuses(record):
            return {
                s["attributes"]["trie_cache"]
                for s in record["spans"]
                if s["name"] == "verify"
            }

        assert statuses(cold_record) == {"miss"}
        assert statuses(warm_record) == {"hit"}

    def test_trace_status_also_lands_on_the_result(self, traced_server, vertex_dataset):
        _, _, engine = traced_server
        query = list(vertex_dataset.symbols(1))[:8]
        assert engine.query(query, tau_ratio=0.3).trie_cache_status == "miss"
        assert engine.query(query, tau_ratio=0.3).trie_cache_status == "hit"

    def test_debug_traces_validates_params(self, traced_server):
        server, _, _ = traced_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                server.url + "/debug/traces?order=sideways", timeout=10
            )
        assert excinfo.value.code == 400

    def test_trace_cli_renders_the_span_tree(self, traced_server, capsys):
        server, _, _ = traced_server
        assert cli_main(["trace", "--url", server.url, "--slowest", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "- query" in out
        assert "shard_worker" in out
        assert "verify" in out
        assert cli_main(["trace", "--url", server.url, "--json", "-n", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["order"] == "recent"
        assert payload["traces"]

    def test_stats_expose_observability_block(self, traced_server):
        _, service, _ = traced_server
        block = service.stats()["observability"]
        assert block["trace_sample_rate"] == 1.0
        assert block["flight_recorder"]["recorded"] >= 1


class TestSlowQueryPath:
    def test_unsampled_slow_query_is_synthesized_and_logged(
        self, vertex_dataset, netedr_cost, caplog
    ):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, netedr_cost, num_shards=2, dp_backend="numpy"
        )
        service = QueryService(
            engine, trace_sample_rate=0.0, slow_query_seconds=0.0
        )
        try:
            query = list(vertex_dataset.symbols(0))[:8]
            with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
                service.query(query, tau_ratio=0.3)
            records = [
                json.loads(r.message)
                for r in caplog.records
                if r.name == "repro.slowlog"
            ]
            assert len(records) == 1
            assert records[0]["event"] == "slow_query"
            assert records[0]["seconds"] >= 0.0
            assert records[0]["dp_backend"] == "numpy"
            slowest = service.observability.recorder.slowest()
            assert len(slowest) == 1
            record = slowest[0]
            assert record["synthesized"] is True
            assert record["slow"] is True
            stage_names = {s["name"] for s in record["spans"]}
            assert {"mincand", "lookup", "verify"} <= stage_names
        finally:
            service.close(close_engine=True)

    def test_sampled_error_is_annotated_not_dropped(
        self, vertex_dataset, netedr_cost
    ):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, netedr_cost, num_shards=2
        )
        service = QueryService(engine, trace_sample_rate=1.0)
        try:
            with pytest.raises(Exception):
                service.query([], tau_ratio=0.3)  # empty query → QueryError
            recent = service.observability.recorder.recent()
            assert len(recent) == 1
            root = recent[0]["spans"][0]
            assert root["attributes"]["error"] == "QueryError"
        finally:
            service.close(close_engine=True)
