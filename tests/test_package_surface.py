"""Public API surface: exports exist, exceptions form one hierarchy."""

import importlib

import pytest

import repro
from repro import exceptions


class TestExceptions:
    def test_single_hierarchy(self):
        for name in (
            "GraphError",
            "TrajectoryError",
            "CostModelError",
            "QueryError",
            "IndexError_",
            "MapMatchError",
        ):
            exc = getattr(exceptions, name)
            assert issubclass(exc, exceptions.ReproError)

    def test_catchable_as_repro_error(self, line_graph):
        from repro.network.graph import RoadNetwork

        g = RoadNetwork()
        g.add_vertex((0, 0))
        with pytest.raises(exceptions.ReproError):
            g.add_edge(0, 7)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.distance",
            "repro.network",
            "repro.spatial",
            "repro.trajectory",
            "repro.apps",
            "repro.baselines",
            "repro.bench",
            "repro.service",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_py_typed_marker(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()
