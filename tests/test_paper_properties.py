"""Property tests for the paper's formal statements.

Each class targets one lemma/theorem/proposition with randomized
instances, complementing the targeted unit tests elsewhere.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.filtering import query_profile
from repro.core.mincand import mincand_greedy
from repro.distance.costs import CostModel, LevenshteinCost
from repro.distance.smith_waterman import all_matches
from repro.distance.wed import wed

symbols = st.integers(min_value=0, max_value=5)
strings = st.lists(symbols, min_size=1, max_size=8)


class WeightedToyCost(CostModel):
    """A small weighted cost model over symbols 0..5 with eta > 0.

    sub(a, b) = |a - b| * 0.7, ins = del = 1.5, B(q) = {b : sub <= 0.7}
    (i.e. immediate neighbors).  Exercises the non-unit-cost code paths in
    property tests without a road network.
    """

    representation = "vertex"
    name = "toy"

    ETA = 0.7

    def sub(self, a: int, b: int) -> float:
        return 0.0 if a == b else abs(a - b) * 0.7

    def ins(self, a: int) -> float:
        return 1.5

    def neighbors(self, q):
        return [b for b in range(6) if self.sub(q, b) <= self.ETA]

    def filter_cost(self, q: int) -> float:
        candidates = [self.ins(q)]
        candidates += [
            self.sub(q, b) for b in range(6) if b not in self.neighbors(q)
        ]
        return min(candidates)


toy = WeightedToyCost()
lev = LevenshteinCost()


class TestTheorem1Weighted:
    """Subsequence filtering is safe for non-unit costs and eta > 0."""

    @given(data=strings, query=strings, ratio=st.floats(0.1, 0.9))
    @settings(max_examples=200, deadline=None)
    def test_filter_never_prunes_a_match(self, data, query, ratio):
        profile = query_profile(query, toy)
        tau = ratio * sum(e.cost for e in profile)
        assume(tau > 0)
        chosen = mincand_greedy(
            [e for e in profile],
            tau,
        )
        neighborhood = set()
        for e in chosen:
            neighborhood.update(e.neighborhood)
        pruned = not any(s in neighborhood for s in data)
        if pruned:
            # Theorem 1: no substring of data can be within tau of query.
            for s in range(len(data)):
                for t in range(s, len(data)):
                    assert wed(data[s : t + 1], query, toy) >= tau - 1e-9


class TestLemma1:
    """Every match has an anchor candidate — drawn from the chosen
    tau-subsequence's neighborhoods — whose decomposition is exact.

    Lemma 1 presupposes that a tau-subsequence exists (``c(Q) >= tau``);
    below that the engine must (and does) fall back to scanning, so such
    instances are excluded here.
    """

    @given(data=strings, query=strings, tau=st.floats(0.5, 4.0))
    @settings(max_examples=150, deadline=None)
    def test_anchor_decomposition_exists(self, data, query, tau):
        profile = query_profile(query, lev)
        assume(sum(e.cost for e in profile) >= tau)
        chosen = mincand_greedy(profile, tau)
        # Candidates exactly as Algorithm 2 collects them.
        candidates = [
            (j, e.position)
            for j, sym in enumerate(data)
            for e in chosen
            if sym in e.neighborhood
        ]
        for s, t, d in all_matches(data, query, lev, tau):
            found = False
            for j, iq in candidates:
                if not s <= j <= t:
                    continue
                left = wed(data[s:j], query[:iq], lev)
                anchor = lev.sub(data[j], query[iq])
                right = wed(data[j + 1 : t + 1], query[iq + 1 :], lev)
                if math.isclose(left + anchor + right, d, abs_tol=1e-9):
                    found = True
                    break
            assert found, (s, t, d)


class TestEquation11:
    """The prefix-row minimum is a monotone lower bound (early
    termination soundness)."""

    @given(data=strings, query=strings)
    @settings(max_examples=100, deadline=None)
    def test_row_minimum_monotone(self, data, query):
        from repro.distance.wed import wed_row_init, wed_step

        row = wed_row_init(lev, query)
        prev_min = min(row)
        for p in data:
            row = wed_step(lev, query, p, row)
            cur_min = min(row)
            assert cur_min >= prev_min - 1e-12
            prev_min = cur_min

    @given(data=strings, query=strings)
    @settings(max_examples=100, deadline=None)
    def test_row_minimum_bounds_extensions(self, data, query):
        from repro.distance.wed import wed_row_init, wed_step

        row = wed_row_init(lev, query)
        for k, p in enumerate(data):
            row = wed_step(lev, query, p, row)
            lb = min(row)
            # Any longer prefix has WED >= lb.
            for t in range(k + 1, len(data)):
                assert wed(data[: t + 1], query, lev) >= lb - 1e-12
            break  # one prefix point suffices per example


class TestStrictThreshold:
    """Definition 2 uses wed < tau, never <=."""

    @given(data=strings, query=strings)
    @settings(max_examples=100, deadline=None)
    def test_boundary_excluded(self, data, query):
        d = wed(data, query, lev)
        assume(d > 0)
        hits = all_matches(data, query, lev, d)
        assert all(dist < d for _, _, dist in hits)


class TestExample2:
    def test_paper_example_2(self):
        """P=ABCDE, Q=BFD, Lev, tau=2: P[1..3] matches with wed 1."""
        A, B, C, D, E, F = range(6)
        hits = all_matches([A, B, C, D, E], [B, F, D], lev, 2.0)
        assert any((s, t) == (1, 3) and d == 1.0 for s, t, d in hits)
