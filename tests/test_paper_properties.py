"""Property tests for the paper's formal statements.

Each class targets one lemma/theorem/proposition with randomized
instances, complementing the targeted unit tests elsewhere.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.filtering import query_profile
from repro.core.mincand import mincand_greedy
from repro.core.results import MatchSet
from repro.core.verification import Verifier
from repro.distance.costs import CostModel, LevenshteinCost
from repro.distance.smith_waterman import all_matches
from repro.distance.wed import wed

symbols = st.integers(min_value=0, max_value=5)
strings = st.lists(symbols, min_size=1, max_size=8)


class WeightedToyCost(CostModel):
    """A small weighted cost model over symbols 0..5 with eta > 0.

    sub(a, b) = |a - b| * 0.7, ins = del = 1.5, B(q) = {b : sub <= 0.7}
    (i.e. immediate neighbors).  Exercises the non-unit-cost code paths in
    property tests without a road network.
    """

    representation = "vertex"
    name = "toy"

    ETA = 0.7

    def sub(self, a: int, b: int) -> float:
        return 0.0 if a == b else abs(a - b) * 0.7

    def ins(self, a: int) -> float:
        return 1.5

    def neighbors(self, q):
        return [b for b in range(6) if self.sub(q, b) <= self.ETA]

    def filter_cost(self, q: int) -> float:
        candidates = [self.ins(q)]
        candidates += [
            self.sub(q, b) for b in range(6) if b not in self.neighbors(q)
        ]
        return min(candidates)


toy = WeightedToyCost()
lev = LevenshteinCost()


class TestTheorem1Weighted:
    """Subsequence filtering is safe for non-unit costs and eta > 0."""

    @given(data=strings, query=strings, ratio=st.floats(0.1, 0.9))
    @settings(max_examples=200, deadline=None)
    def test_filter_never_prunes_a_match(self, data, query, ratio):
        profile = query_profile(query, toy)
        tau = ratio * sum(e.cost for e in profile)
        assume(tau > 0)
        chosen = mincand_greedy(
            [e for e in profile],
            tau,
        )
        neighborhood = set()
        for e in chosen:
            neighborhood.update(e.neighborhood)
        pruned = not any(s in neighborhood for s in data)
        if pruned:
            # Theorem 1: no substring of data can be within tau of query.
            for s in range(len(data)):
                for t in range(s, len(data)):
                    assert wed(data[s : t + 1], query, toy) >= tau - 1e-9


class TestLemma1:
    """Every match has an anchor candidate — drawn from the chosen
    tau-subsequence's neighborhoods — whose decomposition is exact.

    Lemma 1 presupposes that a tau-subsequence exists (``c(Q) >= tau``);
    below that the engine must (and does) fall back to scanning, so such
    instances are excluded here.
    """

    @given(data=strings, query=strings, tau=st.floats(0.5, 4.0))
    @settings(max_examples=150, deadline=None)
    def test_anchor_decomposition_exists(self, data, query, tau):
        profile = query_profile(query, lev)
        assume(sum(e.cost for e in profile) >= tau)
        chosen = mincand_greedy(profile, tau)
        # Candidates exactly as Algorithm 2 collects them.
        candidates = [
            (j, e.position)
            for j, sym in enumerate(data)
            for e in chosen
            if sym in e.neighborhood
        ]
        for s, t, d in all_matches(data, query, lev, tau):
            found = False
            for j, iq in candidates:
                if not s <= j <= t:
                    continue
                left = wed(data[s:j], query[:iq], lev)
                anchor = lev.sub(data[j], query[iq])
                right = wed(data[j + 1 : t + 1], query[iq + 1 :], lev)
                if math.isclose(left + anchor + right, d, abs_tol=1e-9):
                    found = True
                    break
            assert found, (s, t, d)


class TestEquation11:
    """The prefix-row minimum is a monotone lower bound (early
    termination soundness)."""

    @given(data=strings, query=strings)
    @settings(max_examples=100, deadline=None)
    def test_row_minimum_monotone(self, data, query):
        from repro.distance.wed import wed_row_init, wed_step

        row = wed_row_init(lev, query)
        prev_min = min(row)
        for p in data:
            row = wed_step(lev, query, p, row)
            cur_min = min(row)
            assert cur_min >= prev_min - 1e-12
            prev_min = cur_min

    @given(data=strings, query=strings)
    @settings(max_examples=100, deadline=None)
    def test_row_minimum_bounds_extensions(self, data, query):
        from repro.distance.wed import wed_row_init, wed_step

        row = wed_row_init(lev, query)
        for k, p in enumerate(data):
            row = wed_step(lev, query, p, row)
            lb = min(row)
            # Any longer prefix has WED >= lb.
            for t in range(k + 1, len(data)):
                assert wed(data[: t + 1], query, lev) >= lb - 1e-12
            break  # one prefix point suffices per example


class TestStrictThreshold:
    """Definition 2 uses wed < tau, never <=."""

    @given(data=strings, query=strings)
    @settings(max_examples=100, deadline=None)
    def test_boundary_excluded(self, data, query):
        d = wed(data, query, lev)
        assume(d > 0)
        hits = all_matches(data, query, lev, d)
        assert all(dist < d for _, _, dist in hits)


class TestExample2:
    def test_paper_example_2(self):
        """P=ABCDE, Q=BFD, Lev, tau=2: P[1..3] matches with wed 1."""
        A, B, C, D, E, F = range(6)
        hits = all_matches([A, B, C, D, E], [B, F, D], lev, 2.0)
        assert any((s, t) == (1, 3) and d == 1.0 for s, t, d in hits)


class _TableCost(CostModel):
    """A cost model from an explicit random table over symbols 0..5.

    Used to fuzz the DP backends with arbitrary (symmetric, zero-diagonal)
    float costs — the substitution values need not be exactly
    representable, which is precisely what distinguishes a bit-identical
    kernel from a merely close one.
    """

    representation = "vertex"
    name = "table"

    def __init__(self, sub_table, ins_costs, eta):
        self._sub = sub_table
        self._ins = ins_costs
        self._eta = eta

    def sub(self, a: int, b: int) -> float:
        return self._sub[a][b]

    def ins(self, a: int) -> float:
        return self._ins[a]

    def neighbors(self, q):
        return [b for b in range(6) if self._sub[q][b] <= self._eta]

    def filter_cost(self, q: int) -> float:
        outside = [
            self._sub[q][b] for b in range(6) if self._sub[q][b] > self._eta
        ]
        return min([self._ins[q]] + outside)


def _table_costs(unit: float):
    """Strategy for a random valid WED cost model with costs that are
    multiples of ``unit`` (symmetric, sub(a,a)=0, ins=del).

    ``unit=0.25`` is dyadic — every DP sum is exact in float64, so the
    bidirectional decomposition equals the monolithic oracle DP bit for
    bit.  ``unit=0.3`` is *not* representable — sums round differently
    depending on association, which is exactly what distinguishes a
    bit-identical kernel from a merely close one.
    """
    value = st.integers(min_value=1, max_value=40).map(lambda k: k * unit)

    @st.composite
    def build(draw):
        sub = [[0.0] * 6 for _ in range(6)]
        for a in range(6):
            for b in range(a + 1, 6):
                v = draw(value)
                sub[a][b] = sub[b][a] = v
        ins = [draw(value) for _ in range(6)]
        eta = draw(st.sampled_from([0.0, unit, 2 * unit, 4 * unit]))
        return _TableCost(sub, ins, eta)

    return build()


def _verify_both_backends(costs, data, query, tau):
    """Run the full candidate set through both DP backends; returns
    ``{backend: ({match key: distance}, VerificationStats)}``."""
    datasets = [list(data)]
    candidates = [
        (0, j, iq)
        for j, sym in enumerate(data)
        for iq, q in enumerate(query)
        if costs.sub(q, sym) <= costs._eta
    ]
    out = {}
    for backend in ("python", "numpy"):
        verifier = Verifier(
            lambda tid: datasets[tid], query, costs, tau, dp_backend=backend
        )
        ms = MatchSet()
        verifier.verify_all(candidates, ms)
        out[backend] = (
            {(m.trajectory_id, m.start, m.end): m.distance for m in ms},
            verifier.stats,
        )
    return out


class TestBackendBitParity:
    """The python and numpy (array-native) DP backends are interchangeable:
    identical match sets with *bit-identical* distances and identical
    UPR/CMR counters on random cost models, queries, and taus.

    This is stronger than approximate equality: Definition 3 compares
    ``wed < tau`` strictly, so a one-ulp kernel divergence at the boundary
    would change answers (the relaxation form of ``step_dp_numpy`` exists
    precisely to rule that out).
    """

    @given(
        costs=_table_costs(0.3),
        data=strings,
        query=strings,
        tau_steps=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=120, deadline=None)
    def test_backends_bit_identical_nonrepresentable_costs(
        self, costs, data, query, tau_steps
    ):
        tau = tau_steps * 0.3
        results = _verify_both_backends(costs, data, query, tau)
        # Same keys, same float distances (==, not approx), same counters.
        assert results["python"][0] == results["numpy"][0]
        assert results["python"][1] == results["numpy"][1]

    @given(
        costs=_table_costs(0.3),
        data=strings,
        query=strings,
        tau_steps=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=120, deadline=None)
    def test_arena_columns_bit_identical_to_per_node_layout(
        self, costs, data, query, tau_steps
    ):
        """The arena-backed column layout (batched verify_all writing into
        per-level matrices) is a pure memory-layout change: the batched
        walk, the single-candidate arena walk (verify_candidate), and the
        per-node pure-Python layout must agree on every match key, every
        distance *bit for bit* (0.3-multiples are not exactly
        representable, so any reassociation would show), and every
        VerificationStats counter."""
        tau = tau_steps * 0.3
        datasets = [list(data)]
        candidates = [
            (0, j, iq)
            for j, sym in enumerate(data)
            for iq, q in enumerate(query)
            if costs.sub(q, sym) <= costs._eta
        ]
        outcomes = {}
        for label, backend, batched in (
            ("python-per-node", "python", True),
            ("numpy-arena-batched", "numpy", True),
            ("numpy-arena-single", "numpy", False),
        ):
            verifier = Verifier(
                lambda tid: datasets[tid], query, costs, tau, dp_backend=backend
            )
            ms = MatchSet()
            if batched:
                verifier.verify_all(candidates, ms)
            else:
                # Single-candidate entry point: per-column arena writes
                # instead of level-grouped batches (dedupe by hand — the
                # batched path dedupes inside verify_all).
                for cand in dict.fromkeys(candidates):
                    verifier.verify_candidate(cand, ms)
            outcomes[label] = (
                {(m.trajectory_id, m.start, m.end): m.distance for m in ms},
                verifier.stats,
            )
        reference_matches, reference_stats = outcomes["python-per-node"]
        batched_matches, batched_stats = outcomes["numpy-arena-batched"]
        single_matches, single_stats = outcomes["numpy-arena-single"]
        assert batched_matches == reference_matches
        assert single_matches == reference_matches
        assert batched_stats == reference_stats
        # The single path skips verify_all's dedupe accounting but must
        # agree on every column/candidate/emit counter.
        assert single_stats.candidates == reference_stats.candidates
        assert single_stats.sw_columns == reference_stats.sw_columns
        assert single_stats.visited_columns == reference_stats.visited_columns
        assert single_stats.computed_columns == reference_stats.computed_columns
        assert single_stats.emitted == reference_stats.emitted

    @given(
        costs=_table_costs(0.25),
        data=strings,
        query=strings,
        tau_steps=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=120, deadline=None)
    def test_backends_equal_sw_oracle_exact_costs(
        self, costs, data, query, tau_steps
    ):
        tau = tau_steps * 0.25
        # The Lemma 1 contract: candidates must come from a valid
        # tau-subsequence; all positions qualify iff c(Q) >= tau.
        assume(sum(costs.filter_cost(q) for q in query) >= tau)
        results = _verify_both_backends(costs, data, query, tau)
        oracle = {
            (0, s, t): d for s, t, d in all_matches(data, query, costs, tau)
        }
        # Dyadic costs make every sum exact, so both backends must equal
        # the oracle's keys AND distances with plain float equality.
        assert results["python"][0] == oracle
        assert results["numpy"][0] == oracle
