"""Remote worker nodes: ``backend="remote"`` over fault-tolerant sockets.

Every scenario here is deterministic: connection drops, half-open links,
injected latency, fragmented writes, and node kills come from a seeded
:class:`repro.faultinject.FaultPlan` keyed to request ordinals, so a
failing run replays bit-identically.

Two node arrangements are used:

- **in-thread nodes** (:class:`WorkerNodeServer` on an ephemeral port,
  served from a daemon thread) for parity and client-side network
  faults — cheap, and safe because no worker-side kill rule ever ships
  to them (``os._exit`` in-process would take pytest down);
- **subprocess nodes** (:func:`run_worker_node` under a respawn
  wrapper) for anything that kills a node: the injected ``kill_before``
  exits the serving child, the wrapper rebinds the port, and the
  client's reconnect backoff finds the replacement.
"""

import multiprocessing as mp
import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.remote import WorkerNodeServer, load_shard_map, run_worker_node
from repro.exceptions import QueryError, WorkerError
from repro.faultinject import FaultPlan, FaultRule
from repro.trajectory.dataset import TrajectoryDataset
from tests.conftest import sample_query

pytestmark = pytest.mark.timeout(300)


def keys(result):
    return [(m.trajectory_id, m.start, m.end) for m in result.matches]


@contextmanager
def thread_nodes(count):
    """``count`` in-thread worker nodes on ephemeral ports."""
    servers, threads = [], []
    for _ in range(count):
        server = WorkerNodeServer("127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_forever, name="repro-test-node", daemon=True
        )
        thread.start()
        servers.append(server)
        threads.append(thread)
    try:
        yield [s.address for s in servers]
    finally:
        for server in servers:
            server.close()
        # Leaked acceptor threads would flip default_start_method() to
        # "spawn" for every later test in the run.
        for thread in threads:
            thread.join(10)


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


@contextmanager
def process_nodes(count, *, restarts=0):
    """``count`` subprocess worker nodes, each under a respawn wrapper
    that survives ``restarts`` injected kills."""
    ctx = mp.get_context("fork")
    procs, addresses = [], []
    for _ in range(count):
        port = _free_port()
        proc = ctx.Process(
            target=run_worker_node,
            args=("127.0.0.1", port),
            kwargs={"restarts": restarts, "start_method": "fork"},
            name="repro-test-node-wrapper",
        )
        proc.start()
        procs.append(proc)
        addresses.append(f"127.0.0.1:{port}")
    try:
        yield addresses
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(10)
            if proc.is_alive():
                proc.kill()
                proc.join(5)


def remote_engine(dataset, costs, addresses, **kwargs):
    kwargs.setdefault("connect_timeout", 15.0)
    return PartitionedSubtrajectorySearch(
        dataset, costs, backend="remote", shard_map=addresses, **kwargs
    )


# ---------------------------------------------------------------------------
# Construction & addressing
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_remote_requires_a_shard_map(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError, match="shard_map"):
            PartitionedSubtrajectorySearch(
                vertex_dataset, edr_cost, backend="remote"
            )

    def test_shard_map_rejected_on_other_backends(self, vertex_dataset, edr_cost):
        with pytest.raises(QueryError, match="shard_map"):
            PartitionedSubtrajectorySearch(
                vertex_dataset,
                edr_cost,
                backend="processes",
                shard_map=["127.0.0.1:7701"],
            )

    def test_more_nodes_than_trajectories_rejected(self, small_graph, edr_cost, trips):
        ds = TrajectoryDataset(small_graph)
        ds.add(trips[0])
        with pytest.raises(QueryError, match="nodes"):
            PartitionedSubtrajectorySearch(
                ds,
                edr_cost,
                backend="remote",
                shard_map=["127.0.0.1:7701", "127.0.0.1:7702"],
            )

    def test_unreachable_node_fails_within_connect_timeout(
        self, vertex_dataset, edr_cost
    ):
        port = _free_port()  # nothing listens here
        t0 = time.monotonic()
        with pytest.raises(WorkerError):
            remote_engine(
                vertex_dataset,
                edr_cost,
                [f"127.0.0.1:{port}"],
                connect_timeout=0.5,
            )
        assert time.monotonic() - t0 < 10.0

    def test_load_shard_map_shapes(self, tmp_path):
        assert load_shard_map('["127.0.0.1:7701", "127.0.0.1:7702"]') == [
            "127.0.0.1:7701",
            "127.0.0.1:7702",
        ]
        assert load_shard_map('{"nodes": ["127.0.0.1:7701"]}') == ["127.0.0.1:7701"]
        path = tmp_path / "map.json"
        path.write_text('["127.0.0.1:7703"]')
        assert load_shard_map(str(path)) == ["127.0.0.1:7703"]
        with pytest.raises(ValueError):
            load_shard_map("[]")
        with pytest.raises(ValueError):
            load_shard_map('["nohost"]')
        with pytest.raises(ValueError):
            load_shard_map('{"nodes": "127.0.0.1:7701"}')


# ---------------------------------------------------------------------------
# Parity: remote answers are bit-identical to in-process answers
# ---------------------------------------------------------------------------


class TestParity:
    def test_matches_single_node_and_processes_stats(
        self, vertex_dataset, edr_cost, rng
    ):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        with thread_nodes(3) as addresses:
            with remote_engine(vertex_dataset, edr_cost, addresses) as remote, (
                PartitionedSubtrajectorySearch(
                    vertex_dataset, edr_cost, num_shards=3, backend="processes"
                )
            ) as procs:
                assert remote.backend == "remote"
                assert remote.num_shards == 3
                assert remote.nodes() == addresses
                for _ in range(3):
                    query = sample_query(vertex_dataset, rng, 6)
                    a = single.query(query, tau_ratio=0.25)
                    b = remote.query(query, tau_ratio=0.25)
                    c = procs.query(query, tau_ratio=0.25)
                    assert keys(a) == keys(b)
                    assert [m.distance for m in a.matches] == [
                        m.distance for m in b.matches
                    ]
                    assert b.tau == a.tau
                    # Same engine build, same per-worker caches as the
                    # pipe backend: the verification counters are
                    # bit-identical, not merely close.
                    assert b.verification == c.verification
                    assert b.num_candidates == c.num_candidates
                    assert b.complete and b.degraded_shards == ()

    def test_online_inserts_are_replicated(self, small_graph, edr_cost, trips):
        ds = TrajectoryDataset(small_graph)
        for t in trips[:10]:
            ds.add(t)
        with thread_nodes(2) as addresses:
            with remote_engine(ds, edr_cost, addresses) as remote:
                assert remote.add_trajectory(trips[10]) == 10
                assert remote.add_trajectory(trips[11]) == 11
                assert len(remote) == 12
                full = TrajectoryDataset(small_graph)
                for t in trips[:12]:
                    full.add(t)
                rebuilt = SubtrajectorySearch(full, edr_cost)
                query = list(trips[10].path[:6])
                assert keys(remote.query(query, tau_ratio=0.25)) == keys(
                    rebuilt.query(query, tau_ratio=0.25)
                )

    def test_close_is_idempotent_and_final(self, vertex_dataset, edr_cost, rng):
        with thread_nodes(2) as addresses:
            engine = remote_engine(vertex_dataset, edr_cost, addresses)
            engine.close()
            engine.close()
            with pytest.raises(QueryError):
                engine.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)

    def test_worker_states_carry_node_addresses(self, vertex_dataset, edr_cost):
        with thread_nodes(2) as addresses:
            with remote_engine(vertex_dataset, edr_cost, addresses) as engine:
                states = engine.worker_states()
                assert [s.node for s in states] == addresses
                assert all(s.alive and s.breaker == "closed" for s in states)
                assert all(s.pid for s in states)
                d = states[0].to_dict()
                assert d["node"] == addresses[0]


class TestObservability:
    def test_node_metrics_render_with_addresses(
        self, vertex_dataset, edr_cost, rng
    ):
        from repro.service import QueryService

        plan = FaultPlan(rules=[FaultRule(shard=1, op="conn_drop", request=1)])
        with thread_nodes(2) as addresses:
            engine = remote_engine(
                vertex_dataset, edr_cost, addresses, fault_plan=plan
            )
            service = QueryService(engine, cache_size=8)
            try:
                service.query(
                    sample_query(vertex_dataset, rng, 6), tau_ratio=0.25
                )
                rendered = service.observability.registry.render()
                assert "repro_node_up" in rendered
                assert "repro_node_reconnects_total" in rendered
                for address in addresses:
                    assert f'node="{address}"' in rendered
                # The injected drop cost shard 1 exactly one reconnect.
                assert engine.restarts_total() == 1
            finally:
                service.close(close_engine=True)

    def test_node_metrics_absent_on_local_backends(
        self, vertex_dataset, edr_cost, rng
    ):
        from repro.service import QueryService

        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, backend="processes"
        )
        service = QueryService(engine, cache_size=8)
        try:
            service.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)
            rendered = service.observability.registry.render()
            # No node addresses -> the node families stay out of local
            # scrapes entirely (no phantom node="None" series).
            assert "repro_node_up" not in rendered
            assert "repro_node_reconnects_total" not in rendered
        finally:
            service.close(close_engine=True)


# ---------------------------------------------------------------------------
# Network faults: drops, half-open links, latency, fragmented writes
# ---------------------------------------------------------------------------


class TestNetworkFaults:
    def test_conn_drop_reconnects_bit_identically(
        self, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        expected = keys(single.query(query, tau_ratio=0.25))
        plan = FaultPlan(rules=[FaultRule(shard=0, op="conn_drop", request=2)])
        with thread_nodes(2) as addresses:
            with remote_engine(
                vertex_dataset, edr_cost, addresses, fault_plan=plan
            ) as engine:
                for _ in range(3):  # request 2 loses its reply in flight
                    assert keys(engine.query(query, tau_ratio=0.25)) == expected
                assert engine.restarts_total() == 1

    def test_conn_hang_without_deadline_fails_fast_and_recovers(
        self, vertex_dataset, edr_cost, rng
    ):
        # A half-open link with no per-call deadline is unmasked
        # deterministically (the injected hang marks the socket), not by
        # waiting forever.
        query = sample_query(vertex_dataset, rng, 6)
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        expected = keys(single.query(query, tau_ratio=0.25))
        plan = FaultPlan(rules=[FaultRule(shard=1, op="conn_hang", request=1)])
        with thread_nodes(2) as addresses:
            with remote_engine(
                vertex_dataset, edr_cost, addresses, fault_plan=plan
            ) as engine:
                t0 = time.monotonic()
                assert keys(engine.query(query, tau_ratio=0.25)) == expected
                assert time.monotonic() - t0 < 60.0
                assert engine.restarts_total() == 1

    def test_conn_hang_unmasked_by_call_deadline(
        self, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        expected = keys(single.query(query, tau_ratio=0.25))
        # The insert routes to shard gid % 2 (gid = current dataset
        # length); pin the hang to whichever shard that is.
        target = len(vertex_dataset) % 2
        plan = FaultPlan(
            rules=[FaultRule(shard=target, op="conn_hang", request=1, on="add")]
        )
        with thread_nodes(2) as addresses:
            with remote_engine(
                vertex_dataset,
                edr_cost,
                addresses,
                fault_plan=plan,
                remote_call_timeout=3.0,
            ) as engine:
                # The first replicated add on shard 0 vanishes into the
                # half-open link; only the call deadline unmasks it.
                with pytest.raises(WorkerError):
                    engine.add_trajectory(vertex_dataset[0])
                # The link was poisoned and re-established: queries serve.
                deadline = time.monotonic() + 30.0
                while True:
                    try:
                        result = engine.query(query, tau_ratio=0.25)
                        break
                    except WorkerError:
                        assert time.monotonic() < deadline
                        time.sleep(0.05)
                assert keys(result) == expected
                assert engine.restarts_total() >= 1

    def test_slow_links_and_short_writes_are_benign(
        self, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        expected = keys(single.query(query, tau_ratio=0.25))
        plan = FaultPlan(
            rules=[
                FaultRule(shard=0, op="slow_link_ms", request=1, ms=30.0),
                FaultRule(shard=1, op="short_write", request=2),
            ]
        )
        with thread_nodes(2) as addresses:
            with remote_engine(
                vertex_dataset, edr_cost, addresses, fault_plan=plan
            ) as engine:
                for _ in range(3):
                    assert keys(engine.query(query, tau_ratio=0.25)) == expected
                # Latency and fragmentation never cost a connection.
                assert engine.restarts_total() == 0


# ---------------------------------------------------------------------------
# Node loss: reconnect, journal replay, degradation
# ---------------------------------------------------------------------------


class TestNodeLoss:
    def test_node_kill_reconnects_and_replays_inserts(
        self, small_graph, edr_cost, trips
    ):
        ds = TrajectoryDataset(small_graph)
        for t in trips[:12]:
            ds.add(t)
        # Shard 0's node dies right after answering its second query (the
        # first lands below, after the insert).
        plan = FaultPlan(
            rules=[FaultRule(shard=0, op="kill_after", request=1, on="query")]
        )
        with process_nodes(2, restarts=2) as addresses:
            with remote_engine(ds, edr_cost, addresses, fault_plan=plan) as engine:
                gid = engine.add_trajectory(trips[12])  # gid 12 -> shard 0
                assert gid == 12
                query = list(trips[12].path[:6])
                before = engine.query(query, tau_ratio=0.25)  # node dies after
                assert any(m.trajectory_id == gid for m in before.matches)
                # Reconnect ships the snapshot, the journal replays the
                # insert past the handshake watermark: identical again.
                after = engine.query(query, tau_ratio=0.25)
                assert keys(after) == keys(before)
                assert engine.restarts_total() == 1
                states = engine.worker_states()
                assert all(s.alive for s in states)
                assert states[0].restarts == 1

    def test_held_down_node_strict_fails_loudly(
        self, vertex_dataset, edr_cost, rng
    ):
        # Every send to shard 1 tears the connection down: the shard
        # never answers, reconnects notwithstanding.
        plan = FaultPlan(rules=[FaultRule(shard=1, op="conn_drop", request=0)])
        with thread_nodes(3) as addresses:
            with remote_engine(
                vertex_dataset, edr_cost, addresses, fault_plan=plan
            ) as engine:
                with pytest.raises(WorkerError):
                    engine.query(
                        sample_query(vertex_dataset, rng, 6), tau_ratio=0.25
                    )

    def test_held_down_node_degrades_and_opens_breaker(
        self, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        with PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3, backend="serial"
        ) as undisturbed:
            full = undisturbed.query(query, tau_ratio=0.25)
        plan = FaultPlan(rules=[FaultRule(shard=1, op="conn_drop", request=0)])
        with thread_nodes(3) as addresses:
            with remote_engine(
                vertex_dataset,
                edr_cost,
                addresses,
                fault_plan=plan,
                breaker_failures=2,
                breaker_cooldown=30.0,
            ) as engine:
                partial = engine.query(query, tau_ratio=0.25, allow_partial=True)
                assert not partial.complete
                assert partial.degraded_shards == (1,)
                # Round-robin layout: the live shards' answer is the full
                # answer minus shard 1's trajectories.
                expected = [m for m in full.matches if m.trajectory_id % 3 != 1]
                assert keys(partial) == [
                    (m.trajectory_id, m.start, m.end) for m in expected
                ]
                # The failed attempt and its retry opened the breaker
                # (threshold 2); Retry-After now has a basis.
                states = engine.worker_states()
                assert states[1].breaker == "open"
                assert engine.retry_after() > 0.0
                assert states[1].to_dict()["retry_after"] > 0.0


# ---------------------------------------------------------------------------
# Acceptance: seeded mixed chaos, bit-identical, zero lost queries
# ---------------------------------------------------------------------------


class TestSeededChaos:
    QUERIES = 40

    def test_mixed_network_and_node_chaos_loses_nothing(
        self, vertex_dataset, edr_cost, rng
    ):
        plan = FaultPlan.network_chaos(
            seed=2026,
            num_shards=2,
            drops=2,
            hangs=1,
            slow=3,
            slow_ms=15.0,
            short_writes=2,
            kills=2,
            every=6,
        )
        # The schedule is a pure function of its arguments: every
        # disruption lands within the run (ordinal <= queries sent even
        # before retries shift anything).
        disruptions = {
            shard: sorted(plan.disruption_ordinals(shard)) for shard in (0, 1)
        }
        assert sum(len(v) for v in disruptions.values()) == 5
        assert all(o <= self.QUERIES for v in disruptions.values() for o in v)

        queries = [sample_query(vertex_dataset, rng, 6) for _ in range(self.QUERIES)]
        with PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, backend="serial"
        ) as undisturbed:
            expected = [
                keys(undisturbed.query(q, tau_ratio=0.25)) for q in queries
            ]

        with process_nodes(2, restarts=4) as addresses:
            with remote_engine(
                vertex_dataset, edr_cost, addresses, fault_plan=plan
            ) as engine:
                for i, query in enumerate(queries):
                    # Strict mode: a lost query would raise, not degrade.
                    result = engine.query(query, tau_ratio=0.25)
                    assert keys(result) == expected[i], f"query {i} diverged"
                    assert result.complete and result.degraded_shards == ()
                # Every disruption forced exactly one reconnect, each of
                # which replayed the journal to the handshake watermark.
                assert engine.restarts_total() == 5
                states = engine.worker_states()
                assert all(s.alive for s in states)
                assert [s.restarts for s in states] == [
                    len(disruptions[0]),
                    len(disruptions[1]),
                ]
