"""Result cache: LRU mechanics, signatures, and correctness under mutation.

The critical property (extending the ``test_core_online_updates``
pattern): after an online insert, a cached answer for an affected query
must be invalidated — the service may never serve a pre-insert answer to
a post-insert client.
"""

import pytest

from repro.core.engine import SubtrajectorySearch, cost_model_id, query_signature
from repro.core.temporal import TimeInterval
from repro.distance.costs import EDRCost, LevenshteinCost
from repro.exceptions import QueryError
from repro.service import QueryService, ResultCache
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_zero_capacity_disables_retention(self):
        cache = ResultCache(0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_invalidate_single_key(self):
        cache = ResultCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None and cache.get("b") == 2
        assert cache.invalidations == 1

    def test_clear_counts_dropped_entries(self):
        cache = ResultCache(8)
        for i in range(5):
            cache.put(i, i)
        assert cache.clear() == 5
        assert len(cache) == 0 and cache.invalidations == 5

    def test_targeted_invalidate_also_bumps_generation(self):
        cache = ResultCache(8)
        generation = cache.generation
        cache.invalidate("k")  # nothing cached yet, but a compute may be in flight
        cache.put("k", "stale", generation=generation)
        assert cache.get("k") is None

    def test_stale_generation_put_is_dropped(self):
        cache = ResultCache(8)
        generation = cache.generation
        cache.clear()  # an invalidation races past the in-flight compute
        cache.put("k", "stale", generation=generation)
        assert cache.get("k") is None
        cache.put("k", "fresh", generation=cache.generation)
        assert cache.get("k") == "fresh"


class TestQuerySignature:
    def test_same_request_same_signature(self, small_graph):
        costs = EDRCost(small_graph, epsilon=60.0)
        a = query_signature([1, 2, 3], costs, tau=2.0)
        b = query_signature((1, 2, 3), costs, tau=2.0)
        assert a == b and hash(a) == hash(b)

    def test_differs_by_path_tau_and_interval(self, small_graph):
        costs = EDRCost(small_graph, epsilon=60.0)
        base = query_signature([1, 2, 3], costs, tau=2.0)
        assert query_signature([1, 2, 4], costs, tau=2.0) != base
        assert query_signature([1, 2, 3], costs, tau=3.0) != base
        assert query_signature([1, 2, 3], costs, tau_ratio=0.2) != base
        assert (
            query_signature(
                [1, 2, 3], costs, tau=2.0, time_interval=TimeInterval(0, 5)
            )
            != base
        )

    def test_differs_by_cost_model_parameters(self, small_graph):
        a = query_signature([1, 2], EDRCost(small_graph, epsilon=60.0), tau=1.0)
        b = query_signature([1, 2], EDRCost(small_graph, epsilon=80.0), tau=1.0)
        c = query_signature([1, 2], LevenshteinCost(), tau=1.0)
        assert len({a, b, c}) == 3

    def test_equal_across_instances_with_same_parameters(self, small_graph):
        a = cost_model_id(EDRCost(small_graph, epsilon=60.0))
        b = cost_model_id(EDRCost(small_graph, epsilon=60.0))
        assert a == b

    def test_requires_exactly_one_threshold(self, small_graph):
        costs = LevenshteinCost()
        with pytest.raises(QueryError):
            query_signature([1], costs)
        with pytest.raises(QueryError):
            query_signature([1], costs, tau=1.0, tau_ratio=0.1)


class TestCacheUnderMutation:
    """After an online insert, affected cached answers must be dropped."""

    @pytest.fixture()
    def service(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
        engine = SubtrajectorySearch(ds, LevenshteinCost())
        svc = QueryService(engine, max_workers=2, cache_size=64)
        yield svc
        svc.close()

    def test_insert_invalidates_affected_cached_answer(self, service):
        before = service.query([3, 4, 5], tau=1.0)
        assert before.result.matches == []
        assert service.query([3, 4, 5], tau=1.0).cached

        tid = service.add_trajectory(Trajectory([3, 4, 5], timestamps=[0, 1, 2]))

        after = service.query([3, 4, 5], tau=1.0)
        assert not after.cached  # the stale empty answer was invalidated
        assert [(m.trajectory_id, m.start, m.end) for m in after.result.matches] == [
            (tid, 0, 2)
        ]

    def test_post_insert_answers_match_rebuilt_engine(self, service, line_graph):
        queries = ([1, 2], [2, 3, 4], [0, 5])
        for q in queries:
            service.query(q, tau=1.5)  # warm the cache pre-insert
        service.add_trajectory(Trajectory([2, 3, 4, 5], timestamps=[1, 2, 3, 4]))

        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
        ds.add(Trajectory([2, 3, 4, 5], timestamps=[1, 2, 3, 4]))
        rebuilt = SubtrajectorySearch(ds, LevenshteinCost())
        for q in queries:
            assert service.query(q, tau=1.5).result.matches == rebuilt.query(
                q, tau=1.5
            ).matches

    def test_unchanged_dataset_keeps_serving_hits(self, service):
        service.query([1, 2], tau=1.0)
        assert service.query([1, 2], tau=1.0).cached
        metrics = service.stats()
        assert metrics["cache_hits"] == 1
        assert metrics["invalidations"] == 0

    def test_explicit_invalidate_hook(self, service):
        service.query([1, 2], tau=1.0)
        assert service.invalidate() == 1
        assert not service.query([1, 2], tau=1.0).cached
        assert service.stats()["invalidations"] == 1
