"""Cooperative cancellation: deadline-expired work stops burning CPU.

The contract under test (ISSUE 2): when a query's deadline expires, shard
tasks observe the cancellation token *inside* the verification loop and
return early — within one verification-loop iteration — instead of
running to completion after `Executor._gather` has abandoned them.
"""

import time

import pytest

from repro.core.cancellation import CancelToken
from repro.core.engine import SubtrajectorySearch
from repro.core.filtering import tau_from_ratio
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.results import MatchSet
from repro.core.verification import Verifier
from repro.core.workers import default_start_method
from repro.exceptions import DeadlineExceededError, QueryCancelledError
from repro.service import Executor
from tests.conftest import sample_query


class CountdownToken:
    """Duck-typed token that trips after a fixed number of polls."""

    def __init__(self, polls_before_trip: int) -> None:
        self.polls_left = polls_before_trip

    def cancelled(self) -> bool:
        self.polls_left -= 1
        return self.polls_left < 0


class TestCancelToken:
    def test_manual_cancel(self):
        token = CancelToken()
        assert not token.cancelled()
        token.cancel()
        assert token.cancelled()

    def test_deadline_expiry(self):
        token = CancelToken(0.01)
        time.sleep(0.02)
        assert token.cancelled()
        assert token.remaining() < 0

    def test_no_deadline_never_expires(self):
        token = CancelToken()
        assert token.expires is None
        assert token.remaining() is None
        assert not token.cancelled()

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            CancelToken(0.0)


class TestVerifierObservesToken:
    def test_stops_within_one_candidate(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        tau = tau_from_ratio(query, edr_cost, 0.3)
        candidates = engine.candidates(query, tau=tau)
        assert len(candidates) >= 2, "fixture must yield several candidates"

        # Token trips on the poll before the second candidate: exactly one
        # candidate may be verified, then the loop must raise.  (python
        # backend — its verification loop is per candidate.)
        verifier = Verifier(
            vertex_dataset.symbols,
            query,
            edr_cost,
            tau,
            dp_backend="python",
            cancel=CountdownToken(1),
        )
        with pytest.raises(QueryCancelledError):
            verifier.verify_all(candidates, MatchSet())
        assert verifier.stats.candidates == 1

    def test_batched_backend_stops_within_one_group(
        self, vertex_dataset, edr_cost, rng
    ):
        """The numpy backend verifies candidates in anchor groups; a token
        tripping after one poll stops before the first group's trie walk —
        at most that group's candidates are started, none are extended."""
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        tau = tau_from_ratio(query, edr_cost, 0.3)
        candidates = engine.candidates(query, tau=tau)
        assert len(candidates) >= 2, "fixture must yield several candidates"

        verifier = Verifier(
            vertex_dataset.symbols,
            query,
            edr_cost,
            tau,
            dp_backend="numpy",
            cancel=CountdownToken(1),
        )
        with pytest.raises(QueryCancelledError):
            verifier.verify_all(candidates, MatchSet())
        first_group = {c[2] for c in candidates}
        assert verifier.stats.candidates < len(candidates) or len(first_group) == 1
        # The trip fired before any DP column was computed for group two.
        assert verifier.stats.visited_columns == 0

    def test_already_cancelled_token_verifies_nothing(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        tau = tau_from_ratio(query, edr_cost, 0.3)
        candidates = engine.candidates(query, tau=tau)
        token = CancelToken()
        token.cancel()
        verifier = Verifier(vertex_dataset.symbols, query, edr_cost, tau, cancel=token)
        with pytest.raises(QueryCancelledError):
            verifier.verify_all(candidates, MatchSet())
        assert verifier.stats.candidates == 0

    def test_engine_query_with_tripped_token_raises(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            engine.query(
                sample_query(vertex_dataset, rng, 6), tau_ratio=0.25, cancel=token
            )


def _slow_verifier(monkeypatch, counter, delay=0.02):
    """Make every candidate verification take ``delay`` seconds, counting
    candidates actually verified — the slow-verifier fixture of ISSUE 2.

    The seam is ``verify_candidate``, the python backend's per-candidate
    work unit, so engines under this fixture run ``dp_backend="python"``
    (the numpy backend batches whole anchor groups and polls the token per
    trie level instead — deadline plumbing is identical either way)."""
    original = Verifier.verify_candidate

    def slow(self, candidate, matches):
        counter["verified"] += 1
        time.sleep(delay)
        return original(self, candidate, matches)

    monkeypatch.setattr(Verifier, "verify_candidate", slow)


class TestExecutorDeadlineStopsShardWork:
    def test_expired_shards_observe_token_and_return_early(
        self, vertex_dataset, edr_cost, rng, monkeypatch
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        total = 0
        for _ in range(10):  # sample until the query is CPU-heavy enough
            query = sample_query(vertex_dataset, rng, 8)
            tau = tau_from_ratio(query, edr_cost, 0.6)
            total = len(engine.candidates(query, tau=tau))
            if total >= 12:
                break
        assert total >= 12, "need a CPU-heavy query for the deadline to bite"

        counter = {"verified": 0}
        _slow_verifier(monkeypatch, counter)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, dp_backend="python"
        )
        with Executor(sharded, max_workers=2) as executor:
            with pytest.raises(DeadlineExceededError):
                executor.query(query, tau=tau, deadline=0.05)
            # Abandoned shard tasks must wind down via the token, not run
            # all `total` candidates to completion: closing the executor
            # waits for the pool, so everything still running has ended.
        assert counter["verified"] < total, (
            f"shard tasks verified all {total} candidates — the deadline "
            "token was never observed"
        )
        # ~0.05s budget at 0.02s/candidate across 2 shards admits a
        # handful of candidates before the token trips; anything close to
        # `total` means the loop ignored cancellation.
        assert counter["verified"] <= total // 2
        sharded.close()

    @pytest.mark.skipif(
        default_start_method() != "fork",
        reason="patched slow verifier reaches workers only via fork",
    )
    def test_processes_backend_deadline_does_not_desync_pipes(
        self, vertex_dataset, edr_cost, rng, monkeypatch
    ):
        counter = {"verified": 0}
        _slow_verifier(monkeypatch, counter, delay=0.01)
        # Construct AFTER patching: forked workers inherit the slow verifier.
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=2,
            backend="processes",
            dp_backend="python",
        )
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        try:
            with Executor(engine, max_workers=2) as executor:
                with pytest.raises(DeadlineExceededError):
                    executor.query(query, tau_ratio=0.4, deadline=0.05)
                # The abandoned request still got its (error) reply, so the
                # next query on the same pipes must answer correctly.
                result = executor.query(query, tau_ratio=0.25)
                expected = single.query(query, tau_ratio=0.25)
                assert [(m.trajectory_id, m.start, m.end) for m in result.matches] == [
                    (m.trajectory_id, m.start, m.end) for m in expected.matches
                ]
        finally:
            engine.close()

    def test_deadline_without_slow_work_still_succeeds(
        self, vertex_dataset, edr_cost, rng
    ):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2
        )
        with Executor(sharded, max_workers=2) as executor:
            result = executor.query(
                sample_query(vertex_dataset, rng, 6), tau_ratio=0.25, deadline=30.0
            )
            assert result.tau > 0
        sharded.close()
