"""Cooperative cancellation: deadline-expired work stops burning CPU.

The contract under test (ISSUE 2): when a query's deadline expires, shard
tasks observe the cancellation token *inside* the verification loop and
return early — within one verification-loop iteration — instead of
running to completion after `Executor._gather` has abandoned them.

Plus the coalescing fairness rule (ISSUE 4): a Batcher follower that
inherits its leader's DeadlineExceededError while its own budget still
has time left is retried as a new leader instead of failing spuriously.
"""

import threading
import time

import pytest

from repro.core.cancellation import CancelToken
from repro.core.engine import SubtrajectorySearch
from repro.core.filtering import tau_from_ratio
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.results import MatchSet
from repro.core.verification import Verifier
from repro.core.workers import default_start_method
from repro.exceptions import DeadlineExceededError, QueryCancelledError
from repro.service import Executor, QueryService
from repro.service.batching import Batcher
from tests.conftest import sample_query


class CountdownToken:
    """Duck-typed token that trips after a fixed number of polls."""

    def __init__(self, polls_before_trip: int) -> None:
        self.polls_left = polls_before_trip

    def cancelled(self) -> bool:
        self.polls_left -= 1
        return self.polls_left < 0


class TestCancelToken:
    def test_manual_cancel(self):
        token = CancelToken()
        assert not token.cancelled()
        token.cancel()
        assert token.cancelled()

    def test_deadline_expiry(self):
        token = CancelToken(0.01)
        time.sleep(0.02)
        assert token.cancelled()
        assert token.remaining() < 0

    def test_no_deadline_never_expires(self):
        token = CancelToken()
        assert token.expires is None
        assert token.remaining() is None
        assert not token.cancelled()

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            CancelToken(0.0)


class TestVerifierObservesToken:
    def test_stops_within_one_candidate(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        tau = tau_from_ratio(query, edr_cost, 0.3)
        candidates = engine.candidates(query, tau=tau)
        assert len(candidates) >= 2, "fixture must yield several candidates"

        # Token trips on the poll before the second candidate: exactly one
        # candidate may be verified, then the loop must raise.  (python
        # backend — its verification loop is per candidate.)
        verifier = Verifier(
            vertex_dataset.symbols,
            query,
            edr_cost,
            tau,
            dp_backend="python",
            cancel=CountdownToken(1),
        )
        with pytest.raises(QueryCancelledError):
            verifier.verify_all(candidates, MatchSet())
        assert verifier.stats.candidates == 1

    def test_batched_backend_stops_within_one_group(
        self, vertex_dataset, edr_cost, rng
    ):
        """The numpy backend verifies candidates in anchor groups; a token
        tripping after one poll stops before the first group's trie walk —
        at most that group's candidates are started, none are extended."""
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        tau = tau_from_ratio(query, edr_cost, 0.3)
        candidates = engine.candidates(query, tau=tau)
        assert len(candidates) >= 2, "fixture must yield several candidates"

        verifier = Verifier(
            vertex_dataset.symbols,
            query,
            edr_cost,
            tau,
            dp_backend="numpy",
            cancel=CountdownToken(1),
        )
        with pytest.raises(QueryCancelledError):
            verifier.verify_all(candidates, MatchSet())
        first_group = {c[2] for c in candidates}
        assert verifier.stats.candidates < len(candidates) or len(first_group) == 1
        # The trip fired before any DP column was computed for group two.
        assert verifier.stats.visited_columns == 0

    def test_already_cancelled_token_verifies_nothing(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        tau = tau_from_ratio(query, edr_cost, 0.3)
        candidates = engine.candidates(query, tau=tau)
        token = CancelToken()
        token.cancel()
        verifier = Verifier(vertex_dataset.symbols, query, edr_cost, tau, cancel=token)
        with pytest.raises(QueryCancelledError):
            verifier.verify_all(candidates, MatchSet())
        assert verifier.stats.candidates == 0

    def test_engine_query_with_tripped_token_raises(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelledError):
            engine.query(
                sample_query(vertex_dataset, rng, 6), tau_ratio=0.25, cancel=token
            )


def _slow_verifier(monkeypatch, counter, delay=0.02):
    """Make every candidate verification take ``delay`` seconds, counting
    candidates actually verified — the slow-verifier fixture of ISSUE 2.

    The seam is ``verify_candidate``, the python backend's per-candidate
    work unit, so engines under this fixture run ``dp_backend="python"``
    (the numpy backend batches whole anchor groups and polls the token per
    trie level instead — deadline plumbing is identical either way)."""
    original = Verifier.verify_candidate

    def slow(self, candidate, matches):
        counter["verified"] += 1
        time.sleep(delay)
        return original(self, candidate, matches)

    monkeypatch.setattr(Verifier, "verify_candidate", slow)


class TestExecutorDeadlineStopsShardWork:
    def test_expired_shards_observe_token_and_return_early(
        self, vertex_dataset, edr_cost, rng, monkeypatch
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        total = 0
        for _ in range(10):  # sample until the query is CPU-heavy enough
            query = sample_query(vertex_dataset, rng, 8)
            tau = tau_from_ratio(query, edr_cost, 0.6)
            total = len(engine.candidates(query, tau=tau))
            if total >= 12:
                break
        assert total >= 12, "need a CPU-heavy query for the deadline to bite"

        counter = {"verified": 0}
        _slow_verifier(monkeypatch, counter)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2, dp_backend="python"
        )
        with Executor(sharded, max_workers=2) as executor:
            with pytest.raises(DeadlineExceededError):
                executor.query(query, tau=tau, deadline=0.05)
            # Abandoned shard tasks must wind down via the token, not run
            # all `total` candidates to completion: closing the executor
            # waits for the pool, so everything still running has ended.
        assert counter["verified"] < total, (
            f"shard tasks verified all {total} candidates — the deadline "
            "token was never observed"
        )
        # ~0.05s budget at 0.02s/candidate across 2 shards admits a
        # handful of candidates before the token trips; anything close to
        # `total` means the loop ignored cancellation.
        assert counter["verified"] <= total // 2
        sharded.close()

    @pytest.mark.skipif(
        default_start_method() != "fork",
        reason="patched slow verifier reaches workers only via fork",
    )
    def test_processes_backend_deadline_does_not_desync_pipes(
        self, vertex_dataset, edr_cost, rng, monkeypatch
    ):
        counter = {"verified": 0}
        _slow_verifier(monkeypatch, counter, delay=0.01)
        # Construct AFTER patching: forked workers inherit the slow verifier.
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=2,
            backend="processes",
            dp_backend="python",
        )
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        query = sample_query(vertex_dataset, rng, 6)
        try:
            with Executor(engine, max_workers=2) as executor:
                with pytest.raises(DeadlineExceededError):
                    executor.query(query, tau_ratio=0.4, deadline=0.05)
                # The abandoned request still got its (error) reply, so the
                # next query on the same pipes must answer correctly.
                result = executor.query(query, tau_ratio=0.25)
                expected = single.query(query, tau_ratio=0.25)
                assert [(m.trajectory_id, m.start, m.end) for m in result.matches] == [
                    (m.trajectory_id, m.start, m.end) for m in expected.matches
                ]
        finally:
            engine.close()

    def test_deadline_without_slow_work_still_succeeds(
        self, vertex_dataset, edr_cost, rng
    ):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2
        )
        with Executor(sharded, max_workers=2) as executor:
            result = executor.query(
                sample_query(vertex_dataset, rng, 6), tau_ratio=0.25, deadline=30.0
            )
            assert result.tau > 0
        sharded.close()


class TestCoalescingFairness:
    """A follower must not fail on the leader's exhausted budget while its
    own budget has time left — it retries as a new leader (ISSUE 4)."""

    def test_batcher_follower_retries_retryable_leader_error(self):
        batcher = Batcher()
        leader_started = threading.Event()
        release_leader = threading.Event()
        calls = []
        lock = threading.Lock()

        def compute():
            with lock:
                calls.append(threading.current_thread().name)
                first = len(calls) == 1
            if first:
                leader_started.set()
                assert release_leader.wait(5.0)
                raise DeadlineExceededError("leader budget exhausted")
            return "fresh answer"

        outcomes = {}

        def leader():
            try:
                batcher.run("k", compute, follower_retry=_retry_deadline)
            except BaseException as exc:  # noqa: BLE001 - recorded for asserts
                outcomes["leader"] = exc

        def follower():
            try:
                outcomes["follower"] = batcher.run(
                    "k", compute, follower_retry=_retry_deadline
                )
            except BaseException as exc:  # noqa: BLE001 - recorded for asserts
                outcomes["follower"] = exc

        t_leader = threading.Thread(target=leader)
        t_leader.start()
        assert leader_started.wait(5.0)
        t_follower = threading.Thread(target=follower)
        t_follower.start()
        # The follower must have joined the leader's flight before the
        # leader is allowed to fail, else there is nothing to retry.
        deadline = time.monotonic() + 5.0
        while batcher.coalesced == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert batcher.coalesced == 1
        release_leader.set()
        t_leader.join(5.0)
        t_follower.join(5.0)
        # Leader observes its own deadline miss; the follower went around
        # as a new leader and got a real answer (coalesced=False: it paid
        # for its own computation).
        assert isinstance(outcomes["leader"], DeadlineExceededError)
        assert outcomes["follower"] == ("fresh answer", False)
        assert batcher.retried_followers == 1
        # The retried follower was NOT served by the leader's computation:
        # its coalesced count is taken back when it goes around.
        assert batcher.coalesced == 0
        assert len(calls) == 2

    def test_batcher_follower_with_spent_budget_inherits_error(self):
        """No budget left -> no retry: the old (pre-fix) propagation."""
        batcher = Batcher()
        release = threading.Event()

        def compute():
            assert release.wait(5.0)
            time.sleep(0.05)  # outlive the follower's wait budget
            raise DeadlineExceededError("leader budget exhausted")

        errors = {}

        def leader():
            try:
                batcher.run("k", compute, follower_retry=_retry_deadline)
            except BaseException as exc:  # noqa: BLE001
                errors["leader"] = exc

        def follower():
            try:
                batcher.run(
                    "k",
                    compute,
                    wait_timeout=0.04,
                    follower_retry=_retry_deadline,
                )
            except BaseException as exc:  # noqa: BLE001
                errors["follower"] = exc

        t_leader = threading.Thread(target=leader)
        t_leader.start()
        deadline = time.monotonic() + 5.0
        while batcher.in_flight() == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        t_follower = threading.Thread(target=follower)
        t_follower.start()
        while batcher.coalesced == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        t_leader.join(5.0)
        t_follower.join(5.0)
        # The follower's own budget expired while waiting: TimeoutError
        # (the service maps it to DeadlineExceededError), not a retry.
        assert isinstance(errors["follower"], TimeoutError)
        assert batcher.retried_followers == 0

    def test_batcher_non_retryable_error_still_shared(self):
        batcher = Batcher()
        release = threading.Event()

        def compute():
            assert release.wait(5.0)
            raise ValueError("bad query")

        errors = {}

        def runner(name):
            try:
                batcher.run("k", compute, follower_retry=_retry_deadline)
            except BaseException as exc:  # noqa: BLE001
                errors[name] = exc

        t_leader = threading.Thread(target=runner, args=("leader",))
        t_leader.start()
        deadline = time.monotonic() + 5.0
        while batcher.in_flight() == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        t_follower = threading.Thread(target=runner, args=("follower",))
        t_follower.start()
        while batcher.coalesced == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        t_leader.join(5.0)
        t_follower.join(5.0)
        assert isinstance(errors["follower"], ValueError)
        assert errors["follower"] is errors["leader"]
        assert batcher.retried_followers == 0

    def test_batcher_follower_deadline_expires_mid_retry(self):
        """ISSUE 5 regression: a follower whose OWN deadline expires
        *mid-retry* — after the leader's retryable failure woke it but
        before it could re-enter the flight table (here: the retry
        predicate itself outlives the budget, standing in for any
        scheduling delay) — must fail with its own budget verdict,
        TimeoutError, not inherit the leader's error it explicitly opted
        out of, and must not go around as a new leader with time it does
        not have."""
        batcher = Batcher()
        release = threading.Event()
        computes = []

        def compute():
            computes.append(1)
            assert release.wait(5.0)
            raise DeadlineExceededError("leader budget exhausted")

        def slow_retry_predicate(exc: BaseException) -> bool:
            # Retryable — but deciding so outlived the follower's budget.
            time.sleep(0.15)
            return isinstance(exc, DeadlineExceededError)

        errors = {}

        def leader():
            try:
                batcher.run("k", compute, follower_retry=_retry_deadline)
            except BaseException as exc:  # noqa: BLE001
                errors["leader"] = exc

        def follower():
            try:
                batcher.run(
                    "k",
                    compute,
                    wait_timeout=0.1,
                    follower_retry=slow_retry_predicate,
                )
            except BaseException as exc:  # noqa: BLE001
                errors["follower"] = exc

        t_leader = threading.Thread(target=leader)
        t_leader.start()
        deadline = time.monotonic() + 5.0
        while batcher.in_flight() == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        t_follower = threading.Thread(target=follower)
        t_follower.start()
        while batcher.coalesced == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        t_leader.join(5.0)
        t_follower.join(5.0)
        assert isinstance(errors["leader"], DeadlineExceededError)
        assert isinstance(errors["follower"], TimeoutError)
        assert errors["follower"] is not errors["leader"]
        # No retry happened: the single compute() was the leader's.
        assert batcher.retried_followers == 0
        assert len(computes) == 1

    def test_service_follower_survives_leader_deadline(
        self, vertex_dataset, edr_cost, rng, monkeypatch
    ):
        """End to end through QueryService: the leader misses its deadline,
        the coalesced follower recomputes and answers."""
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, cache_size=0)
        query = sample_query(vertex_dataset, rng, 6)
        leader_started = threading.Event()
        release_leader = threading.Event()
        original = type(service.executor).query
        calls = []
        lock = threading.Lock()

        def flaky_executor_query(self, *args, **kwargs):
            with lock:
                calls.append(1)
                first = len(calls) == 1
            if first:
                leader_started.set()
                assert release_leader.wait(5.0)
                raise DeadlineExceededError("leader ran out of budget")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(type(service.executor), "query", flaky_executor_query)
        outcomes = {}

        def submit(name):
            try:
                outcomes[name] = service.query(query, tau_ratio=0.25)
            except BaseException as exc:  # noqa: BLE001
                outcomes[name] = exc

        try:
            t_leader = threading.Thread(target=submit, args=("leader",))
            t_leader.start()
            assert leader_started.wait(5.0)
            t_follower = threading.Thread(target=submit, args=("follower",))
            t_follower.start()
            deadline = time.monotonic() + 5.0
            while service.batcher.coalesced == 0 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert service.batcher.coalesced == 1
            release_leader.set()
            t_leader.join(10.0)
            t_follower.join(10.0)
            assert isinstance(outcomes["leader"], DeadlineExceededError)
            follower = outcomes["follower"]
            assert not isinstance(follower, BaseException), follower
            expected = SubtrajectorySearch(vertex_dataset, edr_cost).query(
                query, tau_ratio=0.25
            )
            assert [
                (m.trajectory_id, m.start, m.end) for m in follower.result.matches
            ] == [(m.trajectory_id, m.start, m.end) for m in expected.matches]
            assert service.batcher.retried_followers == 1
            assert service.stats()["coalesced_retries"] == 1
        finally:
            service.close()


def _retry_deadline(exc: BaseException) -> bool:
    return isinstance(exc, DeadlineExceededError)
