"""Executor + batching + service facade: exactness, deadlines, admission,
and coalescing."""

import threading
import time

import pytest

from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.exceptions import AdmissionError, DeadlineExceededError, ServiceError
from repro.service import Batcher, Executor, QueryService
from tests.conftest import sample_query


def keys(matches):
    return [(m.trajectory_id, m.start, m.end) for m in matches]


class TestExecutor:
    def test_single_engine_matches_direct(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        with Executor(engine, max_workers=2) as executor:
            for _ in range(3):
                q = sample_query(vertex_dataset, rng, 6)
                assert keys(executor.query(q, tau_ratio=0.25).matches) == keys(
                    engine.query(q, tau_ratio=0.25).matches
                )

    def test_partitioned_fan_out_matches_direct(self, vertex_dataset, edr_cost, rng):
        single = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=4
        )
        with Executor(sharded, max_workers=4) as executor:
            for _ in range(3):
                q = sample_query(vertex_dataset, rng, 6)
                a = executor.query(q, tau_ratio=0.25)
                b = single.query(q, tau_ratio=0.25)
                assert keys(a.matches) == keys(b.matches)
                for ma, mb in zip(a.matches, b.matches):
                    assert ma.distance == pytest.approx(mb.distance)

    def test_deadline_exceeded(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        with Executor(engine, max_workers=1) as executor:
            q = sample_query(vertex_dataset, rng, 6)
            with pytest.raises(DeadlineExceededError):
                executor.query(q, tau_ratio=0.25, deadline=1e-9)

    def test_deadline_is_a_service_error(self):
        assert issubclass(DeadlineExceededError, ServiceError)
        assert issubclass(AdmissionError, ServiceError)

    def test_admission_rejects_beyond_max_pending(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        release = threading.Event()
        entered = threading.Event()

        class SlowEngine:
            costs = edr_cost

            def query(self, q, **kwargs):
                entered.set()
                release.wait(timeout=10)
                return engine.query(q, **kwargs)

        q = sample_query(vertex_dataset, rng, 6)
        executor = Executor(SlowEngine(), max_workers=1, max_pending=1)
        try:
            blocker = threading.Thread(
                target=lambda: executor.query(q, tau_ratio=0.25)
            )
            blocker.start()
            assert entered.wait(timeout=10)
            with pytest.raises(AdmissionError):
                executor.query(q, tau_ratio=0.25)
            release.set()
            blocker.join(timeout=10)
        finally:
            release.set()
            executor.close()

    def test_closed_executor_rejects(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        executor = Executor(engine, max_workers=1)
        executor.close()
        with pytest.raises(AdmissionError):
            executor.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)

    def test_invalid_configuration(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        with pytest.raises(ValueError):
            Executor(engine, max_workers=0)
        with pytest.raises(ValueError):
            Executor(engine, max_pending=0)
        with pytest.raises(ValueError):
            Executor(engine, default_deadline=0.0)


class TestBatcher:
    def test_concurrent_duplicates_coalesce(self):
        batcher = Batcher()
        gate = threading.Event()
        computed = []

        def compute():
            gate.wait(timeout=10)
            computed.append(1)
            return "answer"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(batcher.run("k", compute))
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let every thread reach the flight
        gate.set()
        for t in threads:
            t.join(timeout=10)

        assert len(computed) == 1  # one engine pass served all four
        assert sorted(r[0] for r in results) == ["answer"] * 4
        assert sum(1 for r in results if r[1]) == 3  # three followers
        assert batcher.coalesced == 3
        assert batcher.in_flight() == 0

    def test_sequential_runs_do_not_coalesce(self):
        batcher = Batcher()
        assert batcher.run("k", lambda: 1) == (1, False)
        assert batcher.run("k", lambda: 2) == (2, False)
        assert batcher.coalesced == 0

    def test_follower_wait_timeout_expires(self):
        batcher = Batcher()
        gate = threading.Event()
        started = threading.Event()

        def slow_compute():
            started.set()
            gate.wait(timeout=10)
            return "late"

        leader = threading.Thread(target=lambda: batcher.run("k", slow_compute))
        leader.start()
        assert started.wait(timeout=10)
        with pytest.raises(TimeoutError):
            batcher.run("k", slow_compute, wait_timeout=0.05)
        gate.set()
        leader.join(timeout=10)

    def test_leader_error_propagates_to_followers(self):
        batcher = Batcher()
        gate = threading.Event()
        boom = RuntimeError("boom")

        def compute():
            gate.wait(timeout=10)
            raise boom

        errors = []

        def follower():
            try:
                batcher.run("k", compute)
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=follower) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert errors == [boom] * 3


class TestQueryService:
    def test_answers_identical_to_direct_engine(self, vertex_dataset, edr_cost, rng):
        direct = SubtrajectorySearch(vertex_dataset, edr_cost)
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3
        )
        with QueryService(sharded, max_workers=3) as service:
            for _ in range(3):
                q = sample_query(vertex_dataset, rng, 6)
                expected = direct.query(q, tau_ratio=0.25)
                first = service.query(q, tau_ratio=0.25)
                second = service.query(q, tau_ratio=0.25)
                assert not first.cached and second.cached
                for response in (first, second):
                    assert keys(response.result.matches) == keys(expected.matches)

    def test_concurrent_identical_requests_coalesce_or_hit(
        self, vertex_dataset, edr_cost, rng
    ):
        sharded = PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=2
        )
        q = sample_query(vertex_dataset, rng, 6)
        with QueryService(sharded, max_workers=4) as service:
            responses = []
            threads = [
                threading.Thread(
                    target=lambda: responses.append(
                        service.query(q, tau_ratio=0.25)
                    )
                )
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(responses) == 6
            answers = {tuple(keys(r.result.matches)) for r in responses}
            assert len(answers) == 1  # all six saw the same answer
            computed = [r for r in responses if not r.cached and not r.coalesced]
            assert len(computed) >= 1
            stats = service.stats()
            assert stats["queries"] == 6
            assert stats["cache_hits"] + stats["coalesced"] == 6 - len(computed)

    def test_batching_disabled_still_correct(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        q = sample_query(vertex_dataset, rng, 6)
        with QueryService(engine, batching=False, cache_size=0) as service:
            a = service.query(q, tau_ratio=0.25)
            b = service.query(q, tau_ratio=0.25)
            assert not a.cached and not b.cached
            assert keys(a.result.matches) == keys(b.result.matches)

    def test_rejections_are_counted(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, max_workers=1)
        service.executor.close()
        with pytest.raises(AdmissionError):
            service.query(sample_query(vertex_dataset, rng, 6), tau_ratio=0.25)
        assert service.stats()["rejected"] == 1
        assert service.stats()["errors"] == 1
