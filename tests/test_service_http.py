"""HTTP frontend: routes, JSON shapes, error mapping, and the CLI
self-test smoke path."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.engine import SubtrajectorySearch
from repro.distance.costs import LevenshteinCost
from repro.service import QueryService, ServiceServer
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


@pytest.fixture()
def server(line_graph):
    ds = TrajectoryDataset(line_graph)
    ds.add(Trajectory([0, 1, 2, 3], timestamps=[0, 1, 2, 3]))
    ds.add(Trajectory([2, 3, 4, 5], timestamps=[4, 5, 6, 7]))
    engine = SubtrajectorySearch(ds, LevenshteinCost())
    service = QueryService(engine, max_workers=2, cache_size=32)
    with ServiceServer(service).start() as srv:
        yield srv


class TestRoutes:
    def test_healthz(self, server):
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["trajectories"] == 2
        assert body["shards"] == 1

    def test_stats_shape(self, server):
        _post(server.url + "/query", {"path": [1, 2], "tau": 1.0})
        status, body = _get(server.url + "/stats")
        assert status == 200
        assert body["queries"] == 1
        for key in ("qps", "latency_p50", "latency_p99", "cache_hit_rate"):
            assert key in body

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404

    def test_query_matches_engine(self, server, line_graph):
        status, body = _post(
            server.url + "/query", {"path": [1, 2, 3], "tau": 1.0}
        )
        assert status == 200
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2, 3], timestamps=[0, 1, 2, 3]))
        ds.add(Trajectory([2, 3, 4, 5], timestamps=[4, 5, 6, 7]))
        direct = SubtrajectorySearch(ds, LevenshteinCost()).query([1, 2, 3], tau=1.0)
        assert body["total_matches"] == len(direct.matches)
        assert [
            (m["trajectory"], m["start"], m["end"]) for m in body["matches"]
        ] == [(m.trajectory_id, m.start, m.end) for m in direct.matches]
        assert body["cached"] is False

    def test_repeat_query_served_from_cache(self, server):
        _post(server.url + "/query", {"path": [1, 2, 3], "tau": 1.0})
        status, body = _post(
            server.url + "/query", {"path": [1, 2, 3], "tau": 1.0}
        )
        assert status == 200 and body["cached"] is True

    def test_limit_truncates_matches_only(self, server):
        _, full = _post(server.url + "/query", {"path": [2, 3], "tau": 1.5})
        assert full["total_matches"] > 1
        _, limited = _post(
            server.url + "/query", {"path": [2, 3], "tau": 1.5, "limit": 1}
        )
        assert len(limited["matches"]) == 1
        assert limited["total_matches"] == full["total_matches"]

    def test_temporal_constraint_over_http(self, server):
        _, unconstrained = _post(
            server.url + "/query", {"path": [2, 3], "tau": 0.5}
        )
        _, constrained = _post(
            server.url + "/query",
            {"path": [2, 3], "tau": 0.5, "time_from": 0, "time_to": 3},
        )
        assert constrained["total_matches"] < unconstrained["total_matches"]


class TestErrors:
    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no path
            {"path": []},  # empty path
            {"path": [1, 2]},  # no threshold
            {"path": [1, 2], "tau": 1.0, "tau_ratio": 0.1},  # both thresholds
            {"path": [1, 2], "tau": 1.0, "time_from": 0},  # unpaired interval
            {"path": [1, 2], "tau": 1.0, "temporal_mode": "sideways"},
            {"path": [1, 2], "tau": 1.0, "limit": -1},
        ],
    )
    def test_bad_requests_are_400(self, server, payload):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url + "/query", payload)
        assert err.value.code == 400

    def test_nonpositive_deadline_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(
                server.url + "/query",
                {"path": [1, 2], "tau": 1.0, "deadline": 0},
            )
        assert err.value.code == 400

    def test_unexpected_service_error_is_json_500(self, server):
        service = server._service
        original = service.query
        try:
            def boom(*args, **kwargs):
                raise RuntimeError("engine bug")

            service.query = boom
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server.url + "/query", {"path": [1, 2], "tau": 1.0})
            assert err.value.code == 500
            assert "internal error" in json.loads(err.value.read())["error"]
        finally:
            service.query = original

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/query",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400


class TestOnlineInsertOverHTTP:
    def test_non_walk_insert_rejected_by_default(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url + "/trajectories", {"path": [0, 5]})
        assert err.value.code == 400

    def test_non_walk_insert_allowed_with_explicit_opt_out(self, server):
        status, body = _post(
            server.url + "/trajectories", {"path": [0, 5], "validate": False}
        )
        assert status == 200 and body["trajectory"] == 2

    def test_insert_then_query_sees_new_trajectory(self, server):
        _, before = _post(server.url + "/query", {"path": [5, 4, 3], "tau": 1.0})
        assert before["total_matches"] == 0
        status, inserted = _post(
            server.url + "/trajectories",
            {"path": [5, 4, 3], "timestamps": [0, 1, 2]},
        )
        assert status == 200 and inserted["trajectory"] == 2
        _, after = _post(server.url + "/query", {"path": [5, 4, 3], "tau": 1.0})
        assert after["cached"] is False  # stale empty answer was invalidated
        assert after["total_matches"] == 1


class TestServerLifecycle:
    def test_shutdown_without_start_does_not_hang(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0, 1, 2]))
        service = QueryService(
            SubtrajectorySearch(ds, LevenshteinCost()), max_workers=1
        )
        ServiceServer(service).shutdown()  # must return, not block forever


class TestCliSelfTest:
    def test_serve_self_test(self, capsys):
        assert main(["serve", "--self-test", "--function", "lev"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["self_test"] == "ok"
        assert out["total_matches"] >= 1

    def test_serve_self_test_sharded(self, capsys):
        assert main(
            ["serve", "--self-test", "--shards", "3", "--workers", "6",
             "--function", "lev"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["self_test"] == "ok"
        assert out["backend"] == "threads"  # the serve default

    def test_serve_self_test_process_backend(self, capsys):
        # End-to-end over HTTP with one worker process per shard; the
        # command must exit cleanly with no leaked children (the engine is
        # closed in the serve command's finally).
        assert main(
            ["serve", "--self-test", "--shards", "2", "--backend", "processes",
             "--function", "lev"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["self_test"] == "ok"
        assert out["backend"] == "processes"
        import multiprocessing as mp

        assert not [p for p in mp.active_children() if "repro-shard" in p.name]

    def test_serve_self_test_with_real_files(self, tmp_path, capsys):
        net = tmp_path / "net.txt"
        trips = tmp_path / "trips.jsonl"
        assert main(
            ["generate-network", "--rows", "6", "--cols", "6", "--out", str(net)]
        ) == 0
        assert main(
            ["generate-trips", "--network", str(net), "--count", "20",
             "--out", str(trips)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["serve", "--self-test", "--network", str(net), "--trips",
             str(trips), "--function", "lev"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["self_test"] == "ok"
        assert out["total_matches"] >= 1  # served the provided dataset

    def test_serve_requires_inputs_without_self_test(self):
        with pytest.raises(SystemExit):
            main(["serve"])
