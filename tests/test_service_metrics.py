"""Metrics registry: percentiles, counters, and snapshot shape."""

import json

import pytest

from repro.core.engine import QueryResult
from repro.core.verification import VerificationStats
from repro.service import Metrics, percentile


def result_with(matches=0, candidates=0, mincand=0.0, lookup=0.0, verify=0.0):
    from repro.core.results import Match

    return QueryResult(
        matches=[Match(0, i, i, 0.0) for i in range(matches)],
        tau=1.0,
        subsequence=[],
        num_candidates=candidates,
        mincand_seconds=mincand,
        lookup_seconds=lookup,
        verify_seconds=verify,
        verification=VerificationStats(),
    )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = Metrics()
        metrics.observe(0.010, result=result_with(matches=3, candidates=5))
        metrics.observe(0.020, cached=True, result=result_with(matches=3))
        metrics.observe(0.030, coalesced=True, result=result_with(matches=3))
        metrics.observe_error("rejected")
        metrics.observe_error("deadline")
        metrics.observe_invalidation(4)

        snap = metrics.snapshot()
        assert snap["queries"] == 3
        assert snap["cache_hits"] == 1
        assert snap["coalesced"] == 1
        assert snap["computed_queries"] == 1
        assert snap["errors"] == 2
        assert snap["rejected"] == 1
        assert snap["deadline_exceeded"] == 1
        assert snap["invalidations"] == 4
        assert snap["matches"] == 9
        assert snap["cache_hit_rate"] == pytest.approx(1 / 3)
        assert snap["qps"] > 0

    def test_stage_rollups_exclude_cached_and_coalesced(self):
        metrics = Metrics()
        metrics.observe(
            0.1, result=result_with(mincand=0.01, lookup=0.02, verify=0.03)
        )
        metrics.observe(
            0.1,
            cached=True,
            result=result_with(mincand=0.01, lookup=0.02, verify=0.03),
        )
        snap = metrics.snapshot()
        assert snap["stage_seconds"]["mincand"] == pytest.approx(0.01)
        assert snap["stage_seconds"]["lookup"] == pytest.approx(0.02)
        assert snap["stage_seconds"]["verify"] == pytest.approx(0.03)

    def test_latency_percentiles_over_window(self):
        metrics = Metrics(window=8)
        for ms in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):  # first two fall out
            metrics.observe(ms / 1000.0)
        snap = metrics.snapshot()
        assert snap["latency_p50"] == pytest.approx(0.0065)
        assert snap["latency_p99"] <= 0.010 + 1e-12
        assert snap["latency_mean"] == pytest.approx(0.0065)

    def test_errors_labelled_by_exception_type(self):
        """ISSUE 6 satellite 2: per-type error counts alongside the
        aggregate (``errors`` stays for /stats compatibility)."""
        metrics = Metrics()
        metrics.observe_error("error", exc=ValueError("bad tau"))
        metrics.observe_error("error", exc=ValueError("bad query"))
        metrics.observe_error("deadline", exc=TimeoutError("too slow"))
        metrics.observe_error("rejected")  # no exception: kind is the label

        snap = metrics.snapshot()
        assert snap["errors"] == 4
        assert snap["deadline_exceeded"] == 1
        assert snap["rejected"] == 1
        assert snap["errors_by_type"] == {
            "ValueError": 2,
            "TimeoutError": 1,
            "rejected": 1,
        }
        json.dumps(snap)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Metrics(window=0)

    def test_snapshot_is_json_serializable(self):
        metrics = Metrics()
        metrics.observe(0.001, result=result_with(matches=1))
        json.dumps(metrics.snapshot())
