"""Unit tests for planar geometry primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import (
    BoundingBox,
    centroid,
    euclidean,
    squared_euclidean,
)

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
points = st.tuples(coords, coords)


class TestDistances:
    def test_euclidean_basic(self):
        assert euclidean((0, 0), (3, 4)) == 5.0

    def test_euclidean_zero(self):
        assert euclidean((2, 2), (2, 2)) == 0.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert euclidean(a, b) == euclidean(b, a)

    @given(points, points)
    def test_squared_consistent(self, a, b):
        assert math.isclose(
            squared_euclidean(a, b), euclidean(a, b) ** 2, rel_tol=1e-9, abs_tol=1e-6
        )

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6


class TestCentroid:
    def test_single_point(self):
        assert centroid([(1.0, 2.0)]) == (1.0, 2.0)

    def test_square(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2)]
        assert centroid(pts) == (1.0, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestBoundingBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_contains(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains((1, 1))
        assert box.contains((0, 0))  # boundary included
        assert not box.contains((3, 1))

    def test_intersects(self):
        a = BoundingBox(0, 0, 2, 2)
        assert a.intersects(BoundingBox(1, 1, 3, 3))
        assert a.intersects(BoundingBox(2, 2, 4, 4))  # touching counts
        assert not a.intersects(BoundingBox(3, 3, 4, 4))

    def test_expanded_covers_both(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        e = a.expanded(b)
        assert e.contains((0, 0)) and e.contains((3, 3))

    def test_min_distance_inside_is_zero(self):
        assert BoundingBox(0, 0, 2, 2).min_distance((1, 1)) == 0.0

    def test_min_distance_outside(self):
        assert BoundingBox(0, 0, 1, 1).min_distance((4, 5)) == 5.0

    def test_from_points(self):
        box = BoundingBox.from_points([(1, 5), (-2, 3), (0, 0)])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (-2, 0, 1, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_area_and_enlargement(self):
        a = BoundingBox(0, 0, 2, 3)
        assert a.area == 6.0
        assert a.enlargement(BoundingBox(0, 0, 1, 1)) == 0.0
        assert a.enlargement(BoundingBox(0, 0, 4, 3)) == pytest.approx(6.0)

    @given(st.lists(points, min_size=1, max_size=30))
    def test_from_points_contains_all(self, pts):
        box = BoundingBox.from_points(pts)
        assert all(box.contains(p) for p in pts)
