"""kd-tree correctness against brute force, including hypothesis sweeps."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import euclidean
from repro.spatial.kdtree import KDTree

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=120)


def brute_range(points, center, radius):
    return sorted(
        i for i, p in enumerate(points) if euclidean(p, center) <= radius
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KDTree([])

    def test_len(self):
        assert len(KDTree([(0, 0), (1, 1)])) == 2

    def test_duplicate_points_allowed(self):
        tree = KDTree([(1, 1)] * 5)
        assert sorted(tree.range_search((1, 1), 0.0)) == [0, 1, 2, 3, 4]


class TestRangeSearch:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            KDTree([(0, 0)]).range_search((0, 0), -1.0)

    def test_simple(self):
        tree = KDTree([(0, 0), (1, 0), (5, 5)])
        assert sorted(tree.range_search((0, 0), 1.5)) == [0, 1]

    def test_zero_radius_boundary(self):
        tree = KDTree([(0, 0), (3, 4)])
        assert tree.range_search((3, 4), 0.0) == [1]

    @given(point_lists, st.tuples(coords, coords), st.floats(min_value=0, max_value=2e4))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, points, center, radius):
        tree = KDTree(points)
        assert sorted(tree.range_search(center, radius)) == brute_range(
            points, center, radius
        )


class TestNearest:
    def test_single(self):
        idx, dist = KDTree([(2, 2)]).nearest((0, 0))
        assert idx == 0
        assert dist == pytest.approx(math.hypot(2, 2))

    @given(point_lists, st.tuples(coords, coords))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, points, target):
        tree = KDTree(points)
        _, dist = tree.nearest(target)
        best = min(euclidean(p, target) for p in points)
        assert dist == pytest.approx(best, rel=1e-9, abs=1e-9)


class TestKNearest:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KDTree([(0, 0)]).k_nearest((0, 0), 0)

    def test_returns_sorted_distances(self):
        rng = random.Random(5)
        pts = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(200)]
        tree = KDTree(pts)
        result = tree.k_nearest((50, 50), 10)
        dists = [d for _, d in result]
        assert dists == sorted(dists)
        assert len(result) == 10

    def test_k_larger_than_tree(self):
        tree = KDTree([(0, 0), (1, 1)])
        assert len(tree.k_nearest((0, 0), 10)) == 2

    @given(point_lists, st.tuples(coords, coords), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, points, target, k):
        tree = KDTree(points)
        got = [d for _, d in tree.k_nearest(target, k)]
        want = sorted(euclidean(p, target) for p in points)[:k]
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g == pytest.approx(w, rel=1e-9, abs=1e-9)


class TestNearestOutside:
    def test_basic(self):
        tree = KDTree([(0, 0), (1, 0), (10, 0)])
        hit = tree.nearest_outside((0, 0), 2.0)
        assert hit is not None
        idx, dist = hit
        assert idx == 2
        assert dist == pytest.approx(10.0)

    def test_none_when_all_inside(self):
        tree = KDTree([(0, 0), (1, 0)])
        assert tree.nearest_outside((0, 0), 100.0) is None

    def test_predicate_restricts(self):
        tree = KDTree([(0, 0), (5, 0), (6, 0)])
        hit = tree.nearest_outside((0, 0), 1.0, predicate=lambda i: i != 1)
        assert hit is not None and hit[0] == 2

    @given(point_lists, st.tuples(coords, coords), st.floats(min_value=0, max_value=1e4))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, points, target, radius):
        tree = KDTree(points)
        hit = tree.nearest_outside(target, radius)
        outside = [euclidean(p, target) for p in points if euclidean(p, target) > radius]
        if not outside:
            assert hit is None
        else:
            assert hit is not None
            assert hit[1] == pytest.approx(min(outside), rel=1e-9, abs=1e-9)
