"""Differential tests: our kd-tree vs scipy.spatial.cKDTree."""

import random

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.spatial.kdtree import KDTree


@pytest.fixture(scope="module")
def point_cloud():
    rng = random.Random(71)
    return [(rng.uniform(-500, 500), rng.uniform(-500, 500)) for _ in range(800)]


@pytest.fixture(scope="module")
def trees(point_cloud):
    return KDTree(point_cloud), cKDTree(np.asarray(point_cloud))


class TestAgainstScipy:
    def test_range_search(self, trees, point_cloud):
        ours, scipys = trees
        rng = random.Random(3)
        for _ in range(50):
            center = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            radius = rng.uniform(0, 300)
            got = sorted(ours.range_search(center, radius))
            want = sorted(scipys.query_ball_point(center, radius))
            assert got == want

    def test_nearest(self, trees):
        ours, scipys = trees
        rng = random.Random(4)
        for _ in range(50):
            target = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            _, got_d = ours.nearest(target)
            want_d, _ = scipys.query(target)
            assert got_d == pytest.approx(want_d)

    def test_k_nearest(self, trees):
        ours, scipys = trees
        rng = random.Random(5)
        for _ in range(30):
            target = (rng.uniform(-600, 600), rng.uniform(-600, 600))
            k = rng.randint(1, 12)
            got = [d for _, d in ours.k_nearest(target, k)]
            want, _ = scipys.query(target, k=k)
            want = np.atleast_1d(want)
            assert got == pytest.approx(list(want))

    def test_nearest_outside_vs_scipy(self, trees, point_cloud):
        ours, scipys = trees
        rng = random.Random(6)
        for _ in range(30):
            target = (rng.uniform(-500, 500), rng.uniform(-500, 500))
            radius = rng.uniform(0, 200)
            hit = ours.nearest_outside(target, radius)
            dists, _ = scipys.query(target, k=len(point_cloud))
            outside = [d for d in np.atleast_1d(dists) if d > radius]
            if not outside:
                assert hit is None
            else:
                assert hit is not None
                assert hit[1] == pytest.approx(min(outside))
