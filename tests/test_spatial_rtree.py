"""R-tree correctness against brute force."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import BoundingBox, euclidean
from repro.spatial.rtree import RTree

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


def make_point_entries(points):
    return [(i, BoundingBox(x, y, x, y)) for i, (x, y) in enumerate(points)]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RTree([])

    def test_len(self):
        entries = make_point_entries([(0, 0), (1, 1), (2, 2)])
        assert len(RTree(entries)) == 3

    def test_large_bulk_load(self):
        rng = random.Random(1)
        pts = [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(1000)]
        tree = RTree(make_point_entries(pts))
        assert len(tree) == 1000


class TestBoxSearch:
    def test_simple(self):
        entries = [
            (7, BoundingBox(0, 0, 1, 1)),
            (8, BoundingBox(5, 5, 6, 6)),
        ]
        tree = RTree(entries)
        assert tree.search(BoundingBox(0.5, 0.5, 2, 2)) == [7]
        assert sorted(tree.search(BoundingBox(-1, -1, 10, 10))) == [7, 8]
        assert tree.search(BoundingBox(3, 3, 4, 4)) == []

    @given(
        st.lists(st.tuples(coords, coords), min_size=1, max_size=100),
        st.tuples(coords, coords, coords, coords),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, points, q):
        x0, y0, dx, dy = q
        query = BoundingBox(x0, y0, x0 + abs(dx), y0 + abs(dy))
        tree = RTree(make_point_entries(points))
        got = sorted(tree.search(query))
        want = sorted(i for i, (x, y) in enumerate(points) if query.contains((x, y)))
        assert got == want


class TestRangeSearch:
    def test_negative_radius_rejected(self):
        tree = RTree(make_point_entries([(0, 0)]))
        with pytest.raises(ValueError):
            tree.range_search((0, 0), -0.1)

    @given(
        st.lists(st.tuples(coords, coords), min_size=1, max_size=100),
        st.tuples(coords, coords),
        st.floats(min_value=0, max_value=2e4),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, points, center, radius):
        tree = RTree(make_point_entries(points))
        got = sorted(tree.range_search(center, radius))
        want = sorted(
            i for i, p in enumerate(points) if euclidean(p, center) <= radius
        )
        assert got == want

    def test_agrees_with_kdtree(self):
        from repro.spatial.kdtree import KDTree

        rng = random.Random(3)
        pts = [(rng.uniform(0, 500), rng.uniform(0, 500)) for _ in range(300)]
        rt = RTree(make_point_entries(pts))
        kt = KDTree(pts)
        for _ in range(20):
            c = (rng.uniform(0, 500), rng.uniform(0, 500))
            r = rng.uniform(0, 200)
            assert sorted(rt.range_search(c, r)) == sorted(kt.range_search(c, r))
