"""Top-k through the whole serving stack: parity, reuse, degradation.

Pins the end-to-end contract of :meth:`QueryService.topk` and the HTTP
``{"k": n}`` mode against a brute-force per-trajectory Smith–Waterman
oracle: every backend (serial, threads, processes, remote), cold and
warm trie cache, and a held-down shard must all produce answers that
are bit-identical to the oracle — or flagged ``complete=False``, never
silently short.
"""

import json
import random
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import SubtrajectorySearch
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.remote import WorkerNodeServer
from repro.core.topk import topk_search
from repro.distance.smith_waterman import best_match
from repro.exceptions import QueryError, WorkerError
from repro.faultinject import FaultPlan, FaultRule
from repro.service import QueryService, ServiceServer
from tests.conftest import sample_query

pytestmark = pytest.mark.timeout(300)


def oracle_topk(dataset, query, costs, k, *, tids=None):
    """Brute-force ranking: one Smith–Waterman sweep per trajectory.

    A trajectory's best *distance* is unique even when several windows
    achieve it, so the oracle pins the (trajectory, distance) ranking;
    window choice among equal-distance matches follows the engine's
    canonical tie-break and is pinned separately via
    :func:`single_engine_topk` (full bit-identity)."""
    ranked = []
    for tid in tids if tids is not None else range(len(dataset)):
        s, t, d = best_match(dataset.symbols(tid), query, costs)
        if t >= s:
            ranked.append((d, tid))
    ranked.sort()
    return [(tid, d) for d, tid in ranked[:k]]


def single_engine_topk(dataset, query, costs, k):
    """The unsharded reference answer every serving path must reproduce
    bit-for-bit, windows included."""
    return rank_keys(topk_search(SubtrajectorySearch(dataset, costs), query, k))


def rank_keys(result):
    return [(m.trajectory_id, m.start, m.end, m.distance) for m in result]


def distance_keys(result):
    return [(m.trajectory_id, m.distance) for m in result]


@contextmanager
def thread_nodes(count):
    servers, threads = [], []
    for _ in range(count):
        server = WorkerNodeServer("127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_forever, name="repro-test-node", daemon=True
        )
        thread.start()
        servers.append(server)
        threads.append(thread)
    try:
        yield [s.address for s in servers]
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(10)


def held_down(shard):
    return FaultPlan(
        rules=[
            FaultRule(shard=shard, op="kill_before", request=0),
            FaultRule(shard=shard, op="fail_respawn", count=10_000),
        ]
    )


# ---------------------------------------------------------------------------
# Stack-level parity with the brute-force oracle
# ---------------------------------------------------------------------------


class TestStackParity:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        k=st.integers(min_value=1, max_value=12),
        qlen=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_service_topk_is_bit_identical_to_oracle(
        self, vertex_dataset, edr_cost, k, qlen, seed
    ):
        query = sample_query(vertex_dataset, random.Random(seed), qlen)
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, max_workers=2, cache_size=0)
        try:
            response = service.topk(query, k)
        finally:
            service.close()
        assert distance_keys(response.result) == oracle_topk(
            vertex_dataset, query, edr_cost, k
        )
        assert rank_keys(response.result) == single_engine_topk(
            vertex_dataset, query, edr_cost, k
        )
        assert response.result.complete

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_sharded_backends_match_oracle(
        self, vertex_dataset, edr_cost, rng, backend
    ):
        with PartitionedSubtrajectorySearch(
            vertex_dataset, edr_cost, num_shards=3, backend=backend
        ) as engine:
            service = QueryService(engine, cache_size=8)
            try:
                for _ in range(3):
                    query = sample_query(vertex_dataset, rng, 6)
                    response = service.topk(query, 5)
                    assert distance_keys(response.result) == oracle_topk(
                        vertex_dataset, query, edr_cost, 5
                    )
                    assert rank_keys(response.result) == single_engine_topk(
                        vertex_dataset, query, edr_cost, 5
                    )
            finally:
                service.close()

    def test_remote_backend_matches_oracle(self, vertex_dataset, edr_cost, rng):
        query = sample_query(vertex_dataset, rng, 6)
        with thread_nodes(2) as addresses:
            with PartitionedSubtrajectorySearch(
                vertex_dataset,
                edr_cost,
                backend="remote",
                shard_map=addresses,
                connect_timeout=15.0,
            ) as engine:
                service = QueryService(engine, cache_size=8)
                try:
                    response = service.topk(query, 5)
                finally:
                    service.close()
        assert distance_keys(response.result) == oracle_topk(
            vertex_dataset, query, edr_cost, 5
        )
        assert rank_keys(response.result) == single_engine_topk(
            vertex_dataset, query, edr_cost, 5
        )

    def test_cold_and_warm_trie_cache_agree(self, vertex_dataset, edr_cost, rng):
        query = sample_query(vertex_dataset, rng, 6)
        cold_engine = SubtrajectorySearch(
            vertex_dataset, edr_cost, trie_cache_size=0
        )
        warm_engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        cold = topk_search(cold_engine, query, 5)
        first = topk_search(warm_engine, query, 5)
        warm = topk_search(warm_engine, query, 5)  # second pass reuses columns
        want = oracle_topk(vertex_dataset, query, edr_cost, 5)
        assert distance_keys(cold) == want
        assert distance_keys(first) == want
        assert rank_keys(cold) == rank_keys(first) == rank_keys(warm)


# ---------------------------------------------------------------------------
# Cache reuse: a stored k'>=k answer serves k by truncation
# ---------------------------------------------------------------------------


class TestCacheReuse:
    def test_smaller_k_served_without_touching_engine(
        self, vertex_dataset, edr_cost, rng, monkeypatch
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, cache_size=16)
        try:
            query = sample_query(vertex_dataset, rng, 6)
            full = service.topk(query, 5)
            assert not full.cached

            def refuse(*args, **kwargs):
                raise AssertionError("cache reuse must not reach the engine")

            monkeypatch.setattr(service.executor, "topk", refuse)
            for smaller in (5, 3, 1):
                repeat = service.topk(query, smaller)
                assert repeat.cached
                assert rank_keys(repeat.result) == rank_keys(
                    full.result
                )[:smaller]
                assert repeat.result.k == smaller
        finally:
            service.close()

    def test_deeper_k_recomputes_and_replaces(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, cache_size=16)
        try:
            query = sample_query(vertex_dataset, rng, 6)
            shallow = service.topk(query, 2)
            deeper = service.topk(query, 6)
            assert not deeper.cached  # k=2 cannot answer k=6
            assert rank_keys(deeper.result)[:2] == rank_keys(shallow.result)
            # The deeper entry replaced the shallow one: both depths now hit.
            assert service.topk(query, 6).cached
            assert service.topk(query, 2).cached
        finally:
            service.close()

    def test_full_ranking_covers_any_depth(self, vertex_dataset, edr_cost, rng):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, cache_size=16)
        try:
            query = sample_query(vertex_dataset, rng, 6)
            everything = service.topk(query, len(vertex_dataset) + 10)
            assert len(everything.result) <= len(vertex_dataset)
            # The ranking ran out of trajectories, so it answers deeper
            # requests than its own k too.
            deeper = service.topk(query, len(vertex_dataset) + 500)
            assert deeper.cached
            assert rank_keys(deeper.result) == rank_keys(everything.result)
        finally:
            service.close()

    def test_insert_invalidates_topk_entries(
        self, small_graph, vertex_dataset, edr_cost, rng
    ):
        from repro.trajectory.dataset import TrajectoryDataset

        ds = TrajectoryDataset(small_graph, "vertex")
        ds.extend(list(vertex_dataset))
        engine = SubtrajectorySearch(ds, edr_cost)
        service = QueryService(engine, cache_size=16)
        try:
            query = sample_query(ds, rng, 6)
            service.topk(query, 5)
            assert service.topk(query, 5).cached
            service.add_trajectory(ds[0])
            refreshed = service.topk(query, 5)
            assert not refreshed.cached
            assert distance_keys(refreshed.result) == oracle_topk(
                ds, query, edr_cost, 5
            )
        finally:
            service.close()

    def test_range_and_topk_signatures_never_collide(
        self, vertex_dataset, edr_cost, rng
    ):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, cache_size=16)
        try:
            query = sample_query(vertex_dataset, rng, 6)
            assert service.signature(query, tau=5.0) != service.topk_signature(
                query
            )
            service.query(query, tau_ratio=0.25)
            response = service.topk(query, 3)
            assert not response.cached  # the range entry must not answer it
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Degradation: partial answers are flagged, never silently short
# ---------------------------------------------------------------------------


class TestDegradation:
    @pytest.fixture()
    def degraded_service(self, vertex_dataset, edr_cost):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=3,
            backend="processes",
            fault_plan=held_down(1),
        )
        service = QueryService(engine, cache_size=16)
        yield service
        service.close(close_engine=True)

    def test_strict_topk_fails_loudly(self, degraded_service, vertex_dataset, rng):
        query = sample_query(vertex_dataset, rng, 6)
        with pytest.raises(WorkerError):
            degraded_service.topk(query, 5)

    def test_partial_topk_flagged_and_exact_on_live_shards(
        self, degraded_service, vertex_dataset, edr_cost, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        response = degraded_service.topk(query, 5, allow_partial=True)
        result = response.result
        assert not result.complete
        assert 1 in result.degraded_shards
        # Round-robin placement: shard 1 owns global ids g with g % 3 == 1.
        live = [t for t in range(len(vertex_dataset)) if t % 3 != 1]
        assert all(m.trajectory_id % 3 != 1 for m in result)
        # On the shards that answered, the ranking is still exact against
        # the oracle restricted to those trajectories.
        assert distance_keys(result) == oracle_topk(
            vertex_dataset, query, edr_cost, 5, tids=live
        )

    def test_partial_topk_never_cached(
        self, degraded_service, vertex_dataset, rng
    ):
        query = sample_query(vertex_dataset, rng, 6)
        degraded_service.topk(query, 5, allow_partial=True)
        assert len(degraded_service.cache) == 0
        follow_up = degraded_service.topk(query, 5, allow_partial=True)
        assert not follow_up.cached

    def test_degraded_topk_metrics(self, degraded_service, vertex_dataset, rng):
        query = sample_query(vertex_dataset, rng, 6)
        degraded_service.topk(query, 5, allow_partial=True)
        rendered = degraded_service.observability.registry.render()
        assert 'repro_topk_queries_total{outcome="computed"} 1' in rendered
        assert "repro_degraded_queries_total 1" in rendered
        assert "repro_topk_tau_rounds_total" in rendered


# ---------------------------------------------------------------------------
# HTTP: POST /query with {"k": n}
# ---------------------------------------------------------------------------


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestHTTPTopK:
    @pytest.fixture()
    def served(self, vertex_dataset, edr_cost):
        engine = SubtrajectorySearch(vertex_dataset, edr_cost)
        service = QueryService(engine, max_workers=2, cache_size=32)
        with ServiceServer(service).start() as srv:
            yield srv, engine

    def test_ranked_json_matches_oracle(
        self, served, vertex_dataset, edr_cost, rng
    ):
        srv, _ = served
        query = sample_query(vertex_dataset, rng, 6)
        status, body = _post(
            f"http://{srv.host}:{srv.port}/query", {"path": query, "k": 5}
        )
        assert status == 200
        assert body["k"] == 5
        assert [r["rank"] for r in body["results"]] == list(
            range(1, len(body["results"]) + 1)
        )
        got = [
            (r["trajectory"], r["start"], r["end"], r["distance"])
            for r in body["results"]
        ]
        assert got == single_engine_topk(vertex_dataset, query, edr_cost, 5)
        assert [(t, d) for t, _, _, d in got] == oracle_topk(
            vertex_dataset, query, edr_cost, 5
        )
        assert body["partial"] is False
        assert body["tau_rounds"] >= 1
        assert "ties_at_k" in body
        assert body["cached"] is False

    def test_repeat_smaller_k_is_served_cached(
        self, served, vertex_dataset, rng
    ):
        srv, _ = served
        query = sample_query(vertex_dataset, rng, 6)
        url = f"http://{srv.host}:{srv.port}/query"
        _, first = _post(url, {"path": query, "k": 5})
        _, repeat = _post(url, {"path": query, "k": 3})
        assert repeat["cached"] is True
        assert repeat["k"] == 3
        firsts = [r["distance"] for r in first["results"]][:3]
        assert [r["distance"] for r in repeat["results"]] == firsts

    def test_ties_surface_over_http(self, small_graph, vertex_dataset, edr_cost):
        from repro.trajectory.dataset import TrajectoryDataset

        ds = TrajectoryDataset(small_graph, "vertex")
        trip = vertex_dataset[0]
        ds.extend([trip, trip, vertex_dataset[1]])
        engine = SubtrajectorySearch(ds, edr_cost)
        service = QueryService(engine, cache_size=8)
        with ServiceServer(service).start() as srv:
            status, body = _post(
                f"http://{srv.host}:{srv.port}/query",
                {"path": list(ds.symbols(0))[:6], "k": 1},
            )
        assert status == 200
        assert body["ties_at_k"] == 1

    @pytest.mark.parametrize(
        "payload",
        [
            {"k": 0},
            {"k": -3},
            {"k": 2.5},
            {"k": True},
            {"k": "five"},
            {"k": 3, "tau": 5.0},
            {"k": 3, "tau_ratio": 0.2},
            {"k": 3, "time_from": 0, "time_to": 100},
        ],
    )
    def test_bad_topk_requests_are_400(
        self, served, vertex_dataset, rng, payload
    ):
        srv, _ = served
        body = {"path": sample_query(vertex_dataset, rng, 5), **payload}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"http://{srv.host}:{srv.port}/query", body)
        assert excinfo.value.code == 400

    def test_tuning_knobs_forwarded(self, served, vertex_dataset, rng):
        srv, _ = served
        query = sample_query(vertex_dataset, rng, 6)
        status, body = _post(
            f"http://{srv.host}:{srv.port}/query",
            {"path": query, "k": 3, "initial_tau_ratio": 0.4, "growth": 4.0},
        )
        assert status == 200
        # A larger first threshold needs fewer expansion rounds than the
        # default — the knob visibly reached the engine.
        assert body["tau_rounds"] <= 3


# ---------------------------------------------------------------------------
# Seeded kill plan: chaos rounds stay exact or flagged
# ---------------------------------------------------------------------------


class TestSeededKillPlan:
    def test_topk_survives_kill_loop_bit_identically(
        self, vertex_dataset, edr_cost, rng
    ):
        plan = FaultPlan.kill_loop(seed=13, num_shards=3, kills=3, every=2)
        query = sample_query(vertex_dataset, rng, 6)
        want = single_engine_topk(vertex_dataset, query, edr_cost, 5)
        with PartitionedSubtrajectorySearch(
            vertex_dataset,
            edr_cost,
            num_shards=3,
            backend="processes",
            fault_plan=plan,
        ) as engine:
            for _ in range(4):
                got = engine.topk(query, 5)
                # Supervision replays the journal and retries once, so
                # every answer is complete and exact despite the kills.
                assert got.complete
                assert rank_keys(got) == want
