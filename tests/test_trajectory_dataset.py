"""TrajectoryDataset container behaviour."""

import pytest

from repro.exceptions import TrajectoryError
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.model import Trajectory


class TestBasics:
    def test_add_returns_dense_ids(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        assert ds.add(Trajectory([0, 1])) == 0
        assert ds.add(Trajectory([1, 2])) == 1
        assert len(ds) == 2

    def test_unknown_representation_rejected(self, line_graph):
        with pytest.raises(ValueError):
            TrajectoryDataset(line_graph, "banana")

    def test_validate_flag(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        with pytest.raises(TrajectoryError):
            ds.add(Trajectory([0, 3]), validate=True)
        ds.add(Trajectory([0, 3]))  # unvalidated add is permitted

    def test_iteration_and_getitem(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        t = Trajectory([0, 1, 2])
        ds.add(t)
        assert ds[0] == t
        assert list(ds) == [t]


class TestSymbols:
    def test_vertex_symbols(self, line_graph):
        ds = TrajectoryDataset(line_graph, "vertex")
        ds.add(Trajectory([0, 1, 2]))
        assert list(ds.symbols(0)) == [0, 1, 2]

    def test_edge_symbols(self, line_graph):
        ds = TrajectoryDataset(line_graph, "edge")
        ds.add(Trajectory([0, 1, 2]))
        expected = line_graph.path_to_edges([0, 1, 2])
        assert list(ds.symbols(0)) == expected

    def test_edge_symbols_cached(self, line_graph):
        ds = TrajectoryDataset(line_graph, "edge")
        ds.add(Trajectory([0, 1, 2]))
        assert ds.symbols(0) is ds.symbols(0)

    def test_edge_repr_needs_two_vertices(self, line_graph):
        ds = TrajectoryDataset(line_graph, "edge")
        with pytest.raises(TrajectoryError):
            ds.add(Trajectory([0]))

    def test_alphabet_size(self, line_graph):
        vds = TrajectoryDataset(line_graph, "vertex")
        eds = TrajectoryDataset(line_graph, "edge")
        assert vds.alphabet_size() == line_graph.num_vertices
        assert eds.alphabet_size() == line_graph.num_edges


class TestStatistics:
    def test_average_length(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1]))
        ds.add(Trajectory([0, 1, 2, 3]))
        assert ds.average_length() == 3.0
        assert ds.total_symbols() == 6

    def test_empty_average(self, line_graph):
        assert TrajectoryDataset(line_graph).average_length() == 0.0

    def test_statistics_shape(self, vertex_dataset):
        stats = vertex_dataset.statistics()
        assert set(stats) == {
            "num_trajectories",
            "avg_length",
            "num_vertices",
            "num_edges",
        }
        assert stats["num_trajectories"] == len(vertex_dataset)


class TestPersistence:
    def test_round_trip(self, line_graph, tmp_path):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2], timestamps=[0.0, 1.5, 3.0]))
        ds.add(Trajectory([3, 4]))
        path = tmp_path / "ds.jsonl"
        ds.save(path)
        ds2 = TrajectoryDataset.load(line_graph, path)
        assert len(ds2) == 2
        assert ds2[0].path == (0, 1, 2)
        assert ds2[0].timestamps == (0.0, 1.5, 3.0)
        assert ds2[1].timestamps is None

    def test_round_trip_edge_representation(self, line_graph, tmp_path):
        ds = TrajectoryDataset(line_graph, "edge")
        ds.add(Trajectory([0, 1, 2]))
        path = tmp_path / "ds.jsonl"
        ds.save(path)
        ds2 = TrajectoryDataset.load(line_graph, path)
        assert ds2.representation == "edge"
        assert list(ds2.symbols(0)) == list(ds.symbols(0))

    def test_truncated_rejected(self, line_graph, tmp_path):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1]))
        ds.add(Trajectory([1, 2]))
        path = tmp_path / "ds.jsonl"
        ds.save(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TrajectoryError):
            TrajectoryDataset.load(line_graph, path)


class TestSymbolsArray:
    def test_matches_symbols_and_dtype(self, line_graph):
        import numpy as np

        ds = TrajectoryDataset(line_graph, "vertex")
        ds.add(Trajectory([0, 1, 2]))
        arr = ds.symbols_array(0)
        assert arr.dtype == np.int32
        assert arr.tolist() == list(ds.symbols(0))

    def test_memoized(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2]))
        assert ds.symbols_array(0) is ds.symbols_array(0)

    def test_edge_representation(self, line_graph):
        ds = TrajectoryDataset(line_graph, "edge")
        ds.add(Trajectory([0, 1, 2]))
        assert ds.symbols_array(0).tolist() == list(ds.symbols(0))

    def test_online_add_extends_cache(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1]))
        ds.symbols_array(0)
        tid = ds.add(Trajectory([1, 2, 3]))
        assert ds.symbols_array(tid).tolist() == [1, 2, 3]

    def test_zero_copy_views(self, line_graph):
        ds = TrajectoryDataset(line_graph)
        ds.add(Trajectory([0, 1, 2, 3]))
        arr = ds.symbols_array(0)
        back = arr[:2][::-1]
        assert back.base is not None  # a view, not a copy
        assert back.tolist() == [1, 0]
