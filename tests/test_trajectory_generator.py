"""Trip generator: path validity, timestamps, determinism, shape knobs."""

import pytest

from repro.exceptions import TrajectoryError
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.trajectory.generator import TripGenerator


@pytest.fixture(scope="module")
def city():
    return grid_city(8, 8, seed=21)


class TestTrips:
    def test_paths_are_valid_walks(self, city):
        gen = TripGenerator(city, seed=1)
        for trip in gen.generate(20, min_length=5, max_length=40):
            assert city.is_path(list(trip.path))

    def test_length_bounds(self, city):
        gen = TripGenerator(city, seed=2)
        for trip in gen.generate(20, min_length=6, max_length=15):
            assert 6 <= len(trip) <= 15

    def test_timestamps_strictly_increasing(self, city):
        gen = TripGenerator(city, seed=3)
        for trip in gen.generate(10, min_length=5, max_length=30):
            ts = trip.timestamps
            assert ts is not None
            assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_deterministic(self, city):
        a = TripGenerator(city, seed=9).generate(5, min_length=5, max_length=20)
        b = TripGenerator(city, seed=9).generate(5, min_length=5, max_length=20)
        assert [t.path for t in a] == [t.path for t in b]
        assert [t.timestamps for t in a] == [t.timestamps for t in b]

    def test_departures_within_horizon(self, city):
        gen = TripGenerator(city, seed=4)
        trips = gen.generate(10, min_length=5, max_length=20, time_horizon=1000.0)
        assert all(t.start_time < 1000.0 for t in trips)

    def test_explicit_departure(self, city):
        gen = TripGenerator(city, seed=5)
        trip = gen.generate_trip(min_length=5, max_length=20, depart=123.0)
        assert trip.start_time == 123.0

    def test_hub_bias_concentrates_traffic(self, city):
        """Hub endpoints make some vertices much more frequent than uniform."""
        gen = TripGenerator(city, seed=6, hub_fraction=0.03, hub_bias=0.9)
        counts = {}
        for t in gen.generate(60, min_length=5, max_length=30):
            for v in t.path:
                counts[v] = counts.get(v, 0) + 1
        top = max(counts.values())
        avg = sum(counts.values()) / len(counts)
        assert top > 3 * avg

    def test_too_small_graph_rejected(self):
        g = RoadNetwork()
        g.add_vertex((0, 0))
        with pytest.raises(TrajectoryError):
            TripGenerator(g)

    def test_impossible_length_raises(self, city):
        gen = TripGenerator(city, seed=7)
        with pytest.raises(TrajectoryError):
            gen.generate_trip(min_length=10_000, max_length=20_000)

    def test_travel_time_scales_with_speed(self, city):
        slow = TripGenerator(city, seed=8, speed=5.0, time_noise=0.0)
        fast = TripGenerator(city, seed=8, speed=50.0, time_noise=0.0)
        a = slow.generate_trip(min_length=8, max_length=20, depart=0.0)
        b = fast.generate_trip(min_length=8, max_length=20, depart=0.0)
        assert a.path == b.path  # same seed, same route
        assert a.duration == pytest.approx(10 * b.duration)
