"""HMM map matching: recovery of ground-truth paths from noised tracks."""

import pytest

from repro.exceptions import MapMatchError
from repro.network.generators import grid_city
from repro.trajectory.generator import TripGenerator
from repro.trajectory.mapmatch import HMMMapMatcher
from repro.trajectory.noise import gps_noise, resample


@pytest.fixture(scope="module")
def city():
    return grid_city(7, 7, spacing=100.0, seed=31)


@pytest.fixture(scope="module")
def matcher(city):
    return HMMMapMatcher(city, sigma=10.0, beta=50.0, candidate_radius=55.0)


def jaccard(a, b):
    sa, sb = set(a), set(b)
    return len(sa & sb) / len(sa | sb)


class TestMatching:
    def test_noise_free_track_recovers_exactly(self, city, matcher):
        gen = TripGenerator(city, seed=1, detour_prob=0.0)
        trip = gen.generate_trip(min_length=8, max_length=20)
        observations = [city.coord(v) for v in trip.path]
        matched = matcher.match(observations)
        assert matched.path == trip.path

    def test_low_noise_track_mostly_recovered(self, city, matcher):
        gen = TripGenerator(city, seed=2, detour_prob=0.0)
        for trip_seed in range(3):
            trip = gen.generate_trip(min_length=10, max_length=25)
            obs = gps_noise(city, trip, sigma=8.0, seed=trip_seed)
            matched = matcher.match(obs)
            assert jaccard(matched.path, trip.path) > 0.7

    def test_resampled_track_still_connected(self, city, matcher):
        gen = TripGenerator(city, seed=3, detour_prob=0.0)
        trip = gen.generate_trip(min_length=9, max_length=24)
        obs = resample(gps_noise(city, trip, sigma=5.0, seed=9), keep_every=3)
        matched = matcher.match(obs)
        assert city.is_path(list(matched.path))
        assert jaccard(matched.path, trip.path) > 0.5

    def test_matched_output_is_valid_path(self, city, matcher):
        gen = TripGenerator(city, seed=4)
        for i in range(3):
            trip = gen.generate_trip(min_length=8, max_length=18)
            obs = gps_noise(city, trip, sigma=12.0, seed=i)
            matched = matcher.match(obs)
            assert city.is_path(list(matched.path))

    def test_empty_observations_rejected(self, matcher):
        with pytest.raises(MapMatchError):
            matcher.match([])

    def test_single_observation(self, city, matcher):
        matched = matcher.match([city.coord(10)])
        assert len(matched) == 1
        assert matched.path[0] == 10

    def test_far_observation_snaps_to_nearest(self, city, matcher):
        # Observation far from every vertex: candidate fallback kicks in.
        matched = matcher.match([(1e6, 1e6)])
        assert len(matched.path) == 1


class TestNoiseHelpers:
    def test_gps_noise_deterministic(self, city):
        gen = TripGenerator(city, seed=5)
        trip = gen.generate_trip(min_length=5, max_length=10)
        assert gps_noise(city, trip, seed=3) == gps_noise(city, trip, seed=3)

    def test_gps_noise_zero_sigma(self, city):
        gen = TripGenerator(city, seed=6)
        trip = gen.generate_trip(min_length=5, max_length=10)
        obs = gps_noise(city, trip, sigma=0.0, seed=1)
        assert obs == [city.coord(v) for v in trip.path]

    def test_resample_keeps_last(self):
        pts = [(float(i), 0.0) for i in range(10)]
        out = resample(pts, 4)
        assert out[0] == (0.0, 0.0)
        assert out[-1] == (9.0, 0.0)

    def test_resample_every_one_is_identity(self):
        pts = [(float(i), 0.0) for i in range(5)]
        assert resample(pts, 1) == pts

    def test_resample_validates(self):
        with pytest.raises(ValueError):
            resample([(0.0, 0.0)], 0)
