"""Trajectory model invariants and representation conversions."""

import pytest

from repro.exceptions import TrajectoryError
from repro.trajectory.model import Trajectory


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory([])

    def test_length_and_indexing(self):
        t = Trajectory([4, 5, 6])
        assert len(t) == 3
        assert t[1] == 5
        assert list(t) == [4, 5, 6]

    def test_timestamp_length_mismatch(self):
        with pytest.raises(TrajectoryError):
            Trajectory([1, 2], timestamps=[0.0])

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(TrajectoryError):
            Trajectory([1, 2, 3], timestamps=[0.0, 5.0, 4.0])

    def test_equal_timestamps_allowed(self):
        t = Trajectory([1, 2], timestamps=[3.0, 3.0])
        assert t.duration == 0.0

    def test_immutability_via_hash_eq(self):
        a = Trajectory([1, 2, 3], timestamps=[0, 1, 2])
        b = Trajectory([1, 2, 3], timestamps=[0, 1, 2])
        c = Trajectory([1, 2, 3])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestTimestamps:
    def test_duration(self):
        t = Trajectory([1, 2, 3], timestamps=[10.0, 20.0, 45.0])
        assert t.duration == 35.0
        assert t.start_time == 10.0
        assert t.end_time == 45.0

    def test_travel_time(self):
        t = Trajectory([1, 2, 3, 4], timestamps=[0.0, 5.0, 15.0, 30.0])
        assert t.travel_time(1, 3) == 25.0
        assert t.travel_time(0, 0) == 0.0

    def test_travel_time_bad_bounds(self):
        t = Trajectory([1, 2], timestamps=[0.0, 1.0])
        with pytest.raises(TrajectoryError):
            t.travel_time(1, 0)
        with pytest.raises(TrajectoryError):
            t.travel_time(0, 5)

    def test_time_interval(self):
        t = Trajectory([1, 2], timestamps=[3.0, 9.0])
        assert t.time_interval() == (3.0, 9.0)

    def test_missing_timestamps_raise(self):
        t = Trajectory([1, 2])
        with pytest.raises(TrajectoryError):
            _ = t.duration
        with pytest.raises(TrajectoryError):
            t.time_interval()


class TestSubtrajectory:
    def test_subtrajectory(self):
        t = Trajectory([1, 2, 3, 4], timestamps=[0.0, 1.0, 2.0, 3.0])
        s = t.subtrajectory(1, 2)
        assert list(s) == [2, 3]
        assert s.timestamps == (1.0, 2.0)

    def test_bad_bounds(self):
        t = Trajectory([1, 2, 3])
        with pytest.raises(TrajectoryError):
            t.subtrajectory(2, 1)


class TestRepresentations:
    def test_edge_round_trip(self, line_graph):
        t = Trajectory([0, 1, 2, 3])
        edges = t.edge_representation(line_graph)
        assert len(edges) == 3
        t2 = Trajectory.from_edges(line_graph, edges)
        assert t2.path == t.path

    def test_from_edges_with_timestamps(self, line_graph):
        t = Trajectory([0, 1, 2])
        edges = t.edge_representation(line_graph)
        t2 = Trajectory.from_edges(line_graph, edges, timestamps=[0.0, 1.0, 2.0])
        assert t2.timestamps == (0.0, 1.0, 2.0)

    def test_from_edges_empty_rejected(self, line_graph):
        with pytest.raises(TrajectoryError):
            Trajectory.from_edges(line_graph, [])

    def test_validate(self, line_graph):
        Trajectory([0, 1, 2]).validate(line_graph)  # does not raise
        with pytest.raises(TrajectoryError):
            Trajectory([0, 2]).validate(line_graph)
