"""Framing layer of the socket transport (hypothesis-pinned).

The wire protocol is a 4-byte big-endian length prefix plus payload; the
properties that make it safe to run the worker protocol over TCP are
pinned here:

- arbitrary payloads (empty, binary, larger than 64 KiB — i.e. larger
  than one recv chunk) round-trip through *any* split of the byte stream
  into partial reads;
- truncated and oversized frames raise typed errors
  (:class:`FrameTruncatedError` / :class:`FrameTooLargeError`) instead
  of yielding garbage, and an oversized length prefix is rejected before
  any payload byte is consumed, so the stream never desynchronizes;
- :class:`FramedSocket` carries pickled python objects over a real
  socket pair, including frames far beyond one ``recv`` buffer.
"""

import pickle
import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import transport
from repro.core.transport import (
    DEFAULT_MAX_FRAME,
    HEADER_BYTES,
    FrameDecoder,
    FramedSocket,
    encode_frame,
    parse_hostport,
)
from repro.exceptions import (
    FrameTooLargeError,
    FrameTruncatedError,
    TransportError,
    WorkerError,
)


def split_stream(stream: bytes, cuts):
    """Split ``stream`` at the (sorted, deduplicated) cut offsets."""
    points = sorted({min(c, len(stream)) for c in cuts})
    pieces = []
    last = 0
    for p in points:
        pieces.append(stream[last:p])
        last = p
    pieces.append(stream[last:])
    return pieces


payloads = st.lists(
    st.one_of(
        st.binary(max_size=64),
        st.just(b""),  # empty frames are legal and must round-trip
        st.binary(min_size=70_000, max_size=80_000),  # > one recv chunk
    ),
    min_size=1,
    max_size=6,
)


class TestFrameRoundTrip:
    @settings(
        max_examples=60,
        deadline=None,
        # The >64 KiB payloads are the point of the test (multiple recv
        # chunks per frame), so the large-input health check must not
        # trip on an unlucky seed.
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(
        payloads=payloads,
        cuts=st.lists(st.integers(min_value=0, max_value=500_000), max_size=20),
    )
    def test_any_split_reassembles_identically(self, payloads, cuts):
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for piece in split_stream(stream, cuts):
            decoder.feed(piece)
            out.extend(decoder.frames())
        out.extend(decoder.frames())
        decoder.eof()  # clean boundary: must not raise
        assert out == payloads
        assert decoder.pending_bytes == 0

    @settings(max_examples=40, deadline=None)
    @given(payload=st.binary(max_size=200_000))
    def test_one_byte_at_a_time(self, payload):
        # The pathological slow link: one byte per read.
        decoder = FrameDecoder()
        frame = encode_frame(payload)
        out = []
        for i in range(len(frame)):
            decoder.feed(frame[i : i + 1])
            out.extend(decoder.frames())
        assert out == [payload]

    def test_empty_feed_is_a_noop(self):
        decoder = FrameDecoder()
        decoder.feed(b"")
        assert list(decoder.frames()) == []
        decoder.eof()


class TestTypedFailures:
    @settings(max_examples=60, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=10_000),
        keep=st.integers(min_value=0, max_value=10_000 + HEADER_BYTES - 1),
    )
    def test_truncation_anywhere_raises_typed_error(self, payload, keep):
        # Cutting the stream anywhere strictly inside a frame is a
        # truncation; at offset 0 it's a clean close.
        frame = encode_frame(payload)
        keep = min(keep, len(frame) - 1)
        decoder = FrameDecoder()
        decoder.feed(frame[:keep])
        list(decoder.frames())
        if keep == 0:
            decoder.eof()  # nothing buffered: clean close
        else:
            with pytest.raises(FrameTruncatedError):
                decoder.eof()

    def test_oversized_outgoing_frame_rejected_before_send(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame(b"x" * 100, max_frame=99)
        # At the bound is fine.
        assert encode_frame(b"x" * 99, max_frame=99)

    def test_oversized_incoming_prefix_rejected_with_no_payload_consumed(self):
        decoder = FrameDecoder(max_frame=1024)
        bad = encode_frame(b"y" * 2048)  # legal for the sender's bound
        good = encode_frame(b"ok")
        decoder.feed(bad + good)
        with pytest.raises(FrameTooLargeError):
            list(decoder.frames())
        # The oversized frame's payload was NOT consumed: every byte
        # after the rejected prefix is still buffered, so the failure is
        # attributable and the buffer inspectable (the connection is
        # useless either way and must be re-established).
        assert decoder.pending_bytes == len(bad + good) - HEADER_BYTES

    @settings(max_examples=30, deadline=None)
    @given(junk=st.binary(min_size=1, max_size=HEADER_BYTES - 1))
    def test_partial_length_prefix_is_truncation(self, junk):
        decoder = FrameDecoder()
        decoder.feed(junk)
        assert list(decoder.frames()) == []
        with pytest.raises(FrameTruncatedError):
            decoder.eof()

    def test_error_types_are_worker_errors(self):
        # The pool's retry/degrade paths catch WorkerError; transport
        # failures must flow through them unchanged.
        assert issubclass(TransportError, WorkerError)
        assert issubclass(FrameTooLargeError, TransportError)
        assert issubclass(FrameTruncatedError, TransportError)


@pytest.fixture()
def socket_pair():
    a, b = socket.socketpair()
    left, right = FramedSocket(a), FramedSocket(b)
    yield left, right
    left.close()
    right.close()


class TestFramedSocket:
    def test_objects_round_trip(self, socket_pair):
        left, right = socket_pair
        messages = [("query", 1, [1, 2, 3], {"tau": 2.0}), {"pid": 42}, None]
        for msg in messages:
            left.send(msg)
        for msg in messages:
            assert right.poll(1.0)
            assert right.recv() == msg

    def test_large_frame_crosses_recv_chunks(self, socket_pair):
        left, right = socket_pair
        big = list(range(200_000))  # pickles to ~1 MiB, many recv chunks
        # A frame this size overflows the kernel buffer: send from a
        # thread so the reader can drain it concurrently (exactly the
        # real client/node arrangement).
        sender = threading.Thread(target=left.send, args=(big,))
        sender.start()
        try:
            assert right.recv(deadline=30.0) == big
        finally:
            sender.join(10.0)

    def test_short_write_chunking_reassembles(self, socket_pair):
        left, right = socket_pair
        left.send(("add", 7, [1, 2]), chunk=1)
        assert right.recv(deadline=10.0) == ("add", 7, [1, 2])

    def test_oversized_send_never_hits_the_wire(self, socket_pair):
        left, right = socket_pair
        with pytest.raises(FrameTooLargeError):
            left.max_frame = 16
            left.send(b"x" * 1000)
        left.max_frame = DEFAULT_MAX_FRAME
        # The stream is still aligned: a follow-up frame arrives intact.
        left.send("after")
        assert right.recv(deadline=5.0) == "after"

    def test_peer_eof_mid_frame_is_truncation(self, socket_pair):
        left, right = socket_pair
        payload = pickle.dumps("partial")
        frame = encode_frame(payload)
        left._sock.sendall(frame[: len(frame) - 2])
        left.close()
        with pytest.raises(FrameTruncatedError):
            while True:
                right.poll(0.5)

    def test_recv_deadline_expires_with_typed_error(self, socket_pair):
        left, right = socket_pair
        with pytest.raises(TransportError, match="deadline"):
            right.recv(deadline=0.05)

    def test_hung_socket_swallows_sends_and_never_reads(self, socket_pair):
        left, right = socket_pair
        left.hang()
        left.send("vanishes")
        assert not right.poll(0.05)
        with pytest.raises(TransportError):
            left.recv(deadline=0.05)


class TestAddressing:
    def test_parse_hostport(self):
        assert parse_hostport("127.0.0.1:7701") == ("127.0.0.1", 7701)
        assert parse_hostport("localhost:0") == ("localhost", 0)

    @pytest.mark.parametrize(
        "bad", ["", "nohost", "host:", ":123x", "host:notaport", "host:-1"]
    )
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_hostport(bad)

    def test_connect_refused_is_typed(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        with pytest.raises(TransportError):
            transport.connect("127.0.0.1", port, timeout=0.5)
