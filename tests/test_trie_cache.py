"""Cross-query warm trie cache (ISSUE 5): warm == cold, bit for bit.

The engine-level :class:`~repro.core.trie.TrieCache` persists verification
tries across queries sharing the query-and-cost-model signature prefix, so
repeated queries walk warm columns level-synchronously instead of
recomputing them.  Warmth is a pure scheduling change — a cached column
holds the exact floats its recomputation would produce — so this suite
pins, via hypothesis over synthetic workloads and non-representable
(0.3-multiple) costs:

- results (match keys AND distances) bit-identical warm vs cold, across
  python/numpy/auto backends and tau variations sharing one cache entry;
- every VerificationStats counter identical warm vs cold except
  ``computed_columns``, which may only *drop* on a warm walk (and drops
  to exactly 0 on an exact repeat — the whole frontier is cached);
- the cache being merely *enabled* changes nothing: a first (cold-start)
  query through the cache matches the cache-disabled run in results,
  stats, and ``dp_array_allocations`` exactly;
- concurrency: shard engines sharing one TrieCache under simultaneous
  queries and an online insert never tear a column;
- eviction: LRU order under the byte budget, arena release, size-0
  disable, and stats summing across shards (processes backend included).
"""

import gc
import json
import threading
import urllib.request
import weakref

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser
from repro.core.engine import (
    DEFAULT_TRIE_CACHE,
    DEFAULT_TRIE_CACHE_BYTES,
    SubtrajectorySearch,
)
from repro.core.partitioned import PartitionedSubtrajectorySearch
from repro.core.results import MatchSet
from repro.core.trie import TrieCache, TrieCacheEntry
from repro.core.verification import Verifier
from repro.distance.costs import CostModel, LevenshteinCost
from repro.service import QueryService
from repro.service.http import ServiceServer
from repro.trajectory.dataset import TrajectoryDataset


class WeightedCost(CostModel):
    """Non-representable 0.3-multiple costs: bit-identity stress.

    No ``sub_row_array`` override, so ``vectorized_rows()`` is False and
    ``dp_backend="auto"`` routes every query length to numpy."""

    name = "w03"

    def sub(self, a: int, b: int) -> float:
        return 0.3 * abs(a - b)

    def ins(self, a: int) -> float:
        return 0.7 + 0.1 * (a % 3)


lev = LevenshteinCost()
w03 = WeightedCost()


def candidates_for(data_strings, query):
    """All (id, j, iq) anchors within substitution distance 1 symbol."""
    out = []
    for tid, data in enumerate(data_strings):
        for j, sym in enumerate(data):
            for iq, q in enumerate(query):
                if abs(sym - q) <= 1:
                    out.append((tid, j, iq))
    return out


def run_verifier(data, query, costs, tau, backend, entry):
    v = Verifier(
        lambda tid: data[tid],
        query,
        costs,
        tau,
        dp_backend=backend,
        trie_entry=entry,
    )
    ms = MatchSet()
    v.verify_all(candidates_for(data, query), ms)
    matches = sorted(
        (m.trajectory_id, m.start, m.end, m.distance) for m in ms.to_list()
    )
    return matches, v.stats, v.dp_array_allocations


symbols = st.integers(min_value=0, max_value=5)
strings = st.lists(symbols, min_size=1, max_size=10)


class TestWarmColdBitIdentity:
    """Hypothesis pinning of the warm walker against cold verification."""

    @given(
        data=st.lists(strings, min_size=1, max_size=3),
        query=st.lists(symbols, min_size=1, max_size=5),
        taus=st.lists(
            st.floats(min_value=0.4, max_value=4.0), min_size=1, max_size=3
        ),
    )
    @settings(max_examples=60, deadline=None)
    @pytest.mark.parametrize("costs", [lev, w03], ids=["lev", "w03"])
    def test_tau_variations_share_one_entry(self, costs, data, query, taus):
        """One shared TrieCacheEntry across tau variations: results and
        all answer-relevant counters bit-identical to fresh-trie runs;
        computed_columns only ever drops."""
        entry = TrieCacheEntry()
        for tau in taus:
            warm = run_verifier(data, query, costs, tau, "numpy", entry)
            cold = run_verifier(data, query, costs, tau, "numpy", None)
            assert warm[0] == cold[0]  # keys AND distances, exact ==
            ws, cs = warm[1], cold[1]
            assert ws.candidates == cs.candidates
            assert ws.sw_columns == cs.sw_columns
            assert ws.visited_columns == cs.visited_columns
            assert ws.emitted == cs.emitted
            assert ws.duplicate_candidates == cs.duplicate_candidates
            # Warmth can only save recomputation, never add it.
            assert ws.computed_columns <= cs.computed_columns
        # An exact repeat finds its whole frontier cached: the walk is
        # pure level-synchronous gathers, zero kernel launches.
        repeat = run_verifier(data, query, costs, taus[-1], "numpy", entry)
        assert repeat[0] == warm[0]
        assert repeat[1].computed_columns == 0
        assert repeat[1].visited_columns == warm[1].visited_columns

    @given(
        data=st.lists(strings, min_size=1, max_size=3),
        query=st.lists(symbols, min_size=1, max_size=5),
        tau=st.floats(min_value=0.4, max_value=4.0),
    )
    @settings(max_examples=60, deadline=None)
    @pytest.mark.parametrize("costs", [lev, w03], ids=["lev", "w03"])
    def test_warm_walk_matches_python_backend(self, costs, data, query, tau):
        """The strongest cross-backend pin: a *warm* numpy walk equals the
        pure-Python per-cell backend bit for bit — results and every
        counter except computed_columns (the python backend has no
        cross-query cache, so it recomputes what the warm walk reuses)."""
        entry = TrieCacheEntry()
        run_verifier(data, query, costs, tau, "numpy", entry)  # warm up
        warm = run_verifier(data, query, costs, tau, "numpy", entry)
        python = run_verifier(data, query, costs, tau, "python", None)
        assert warm[0] == python[0]
        assert warm[1].visited_columns == python[1].visited_columns
        assert warm[1].emitted == python[1].emitted
        assert warm[1].computed_columns == 0
        # And the python backend ignores the entry entirely: handing it
        # one must change nothing (auto short queries on vectorizable
        # models resolve to python — the cache must be inert there).
        with_entry = run_verifier(data, query, costs, tau, "python", entry)
        assert with_entry[0] == python[0]
        assert with_entry[1] == python[1]
        assert with_entry[2] == python[2] == 0  # no ndarrays either way

    @given(
        data=st.lists(strings, min_size=1, max_size=3),
        query=st.lists(symbols, min_size=1, max_size=5),
        tau=st.floats(min_value=0.4, max_value=4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_cache_enabled_cold_start_is_invisible(self, data, query, tau):
        """Routing a first-touch query through a (cold) cache entry is a
        no-op: results, the full VerificationStats, and even
        dp_array_allocations match the cache-disabled run exactly."""
        through_cache = run_verifier(data, query, w03, tau, "numpy", TrieCacheEntry())
        no_cache = run_verifier(data, query, w03, tau, "numpy", None)
        assert through_cache[0] == no_cache[0]
        assert through_cache[1] == no_cache[1]
        assert through_cache[2] == no_cache[2]


def _result_key(result):
    return [(m.trajectory_id, m.start, m.end, m.distance) for m in result.matches]


class TestEngineWarmPath:
    """Engine-level integration: cache key sharing, backends, inserts."""

    @pytest.mark.parametrize("dp_backend", ["auto", "numpy", "python"])
    def test_warm_engine_matches_cold_engine(
        self, vertex_dataset, netedr_cost, rng, dp_backend
    ):
        from tests.conftest import sample_query

        warm_engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, dp_backend=dp_backend, trie_cache_size=8
        )
        cold_engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, dp_backend=dp_backend, trie_cache_size=0
        )
        query = sample_query(vertex_dataset, rng, 8)
        for tau_ratio in (0.3, 0.45, 0.3, 0.2):
            warm = warm_engine.query(query, tau_ratio=tau_ratio)
            cold = cold_engine.query(query, tau_ratio=tau_ratio)
            assert _result_key(warm) == _result_key(cold)
            assert warm.verification.visited_columns == cold.verification.visited_columns
            assert warm.verification.computed_columns <= cold.verification.computed_columns
        stats = warm_engine.trie_cache_stats()
        if dp_backend == "python":
            # The python backend builds per-verifier node tries; the
            # engine never touches the TrieCache for it.
            assert stats["misses"] == stats["hits"] == 0
        else:
            # All four tau variations share ONE entry: a single miss.
            assert stats["misses"] == 1
            assert stats["hits"] == 3
            assert stats["size"] == 1
        assert cold_engine.trie_cache_stats()["capacity"] == 0

    def test_online_insert_needs_no_invalidation(self, small_graph, trips, netedr_cost):
        """Why inserts never invalidate the trie cache: a cached column is
        keyed by its data-symbol *path* (plus the fixed query part and
        cost model) — ``wed(path, Q^d)`` does not mention the dataset.  A
        new trajectory only adds new paths; wherever it shares a prefix
        with already-cached paths, the correct columns for that prefix
        are *by definition* the cached ones.  So the warm engine must
        answer post-insert queries exactly like a cold engine built on
        the post-insert dataset, with its pre-insert entries intact."""
        dataset = TrajectoryDataset(small_graph, "vertex")
        dataset.extend(trips[:20])
        engine = SubtrajectorySearch(dataset, netedr_cost, trie_cache_size=8)
        query = list(dataset.symbols(0))[:8]
        before = engine.query(query, tau_ratio=0.4)
        assert engine.trie_cache_stats()["size"] == 1
        engine.add_trajectory(trips[20])
        after = engine.query(query, tau_ratio=0.4)
        # Entry survived the insert (no invalidation) and was reused.
        stats = engine.trie_cache_stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["evictions"] == 0
        # ... and the warm answer equals a from-scratch engine's.
        reference = TrajectoryDataset(small_graph, "vertex")
        reference.extend(trips[:21])
        fresh = SubtrajectorySearch(reference, netedr_cost, trie_cache_size=0)
        assert _result_key(after) == _result_key(fresh.query(query, tau_ratio=0.4))
        # The new trajectory's matches are found warm: the insert's new
        # paths are cold frontier, everything shared stays cached.
        assert len(after.matches) >= len(before.matches)


class TestSharedCacheConcurrency:
    def test_threads_shards_share_one_cache_under_insert(
        self, small_graph, trips, netedr_cost
    ):
        """Two threads-backend shards + concurrent clients + an online
        insert, all over ONE shared TrieCache.

        Safe because (a) trie columns are dataset-independent — shard A's
        walk caches columns shard B would compute identically, and an
        insert adds paths without changing any existing column (see
        test_online_insert_needs_no_invalidation) — and (b) the trie's
        writer lock plus publish-after-write ordering mean a lock-free
        reader never observes a torn column.  Torn or wrong columns
        would surface here as wrong distances vs. the cold references.
        """
        dataset = TrajectoryDataset(small_graph, "vertex")
        dataset.extend(trips[:20])
        engine = PartitionedSubtrajectorySearch(
            dataset,
            netedr_cost,
            num_shards=2,
            backend="threads",
            max_workers=2,
            trie_cache_size=8,
        )
        queries = [list(dataset.symbols(t))[:8] for t in (0, 1)]
        pre = {
            i: _result_key(engine.query(q, tau_ratio=0.4))
            for i, q in enumerate(queries)
        }
        n_pre = len(dataset)
        reference = TrajectoryDataset(small_graph, "vertex")
        reference.extend(trips[:21])
        post_engine = SubtrajectorySearch(reference, netedr_cost, trie_cache_size=0)
        post = {
            i: _result_key(post_engine.query(q, tau_ratio=0.4))
            for i, q in enumerate(queries)
        }
        errors = []
        inserted = threading.Event()

        def client(worker_id):
            try:
                for lap in range(8):
                    i = (worker_id + lap) % len(queries)
                    got = _result_key(engine.query(queries[i], tau_ratio=0.4))
                    # A query racing the insert may see the new trajectory
                    # partially indexed (documented engine window), so
                    # only the settled-trajectory part is exact; columns
                    # themselves must be correct either way.
                    old = [m for m in got if m[0] < n_pre]
                    new = [m for m in got if m[0] >= n_pre]
                    assert old == pre[i], f"torn/wrong result for query {i}"
                    assert set(new) <= set(post[i]) - set(pre[i])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def mutator():
            try:
                inserted.wait(5.0)
                engine.add_trajectory(trips[20])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        threads.append(threading.Thread(target=mutator))
        for t in threads:
            t.start()
        inserted.set()
        for t in threads:
            t.join(30.0)
        assert not errors, errors
        # Settled state: warm answers equal the post-insert cold engine.
        for i, q in enumerate(queries):
            assert _result_key(engine.query(q, tau_ratio=0.4)) == post[i]
        stats = engine.trie_cache_stats()
        # One shared cache: one miss per distinct signature, no matter
        # how many shards and threads walked it; everything else hit.
        assert stats["misses"] == len(queries)
        assert stats["hits"] >= 4 * 8 - len(queries)
        assert stats["evictions"] == 0
        assert stats["shards"] == stats["shards_reporting"] == 2
        engine.close()


class TestEvictionAndDisable:
    def test_engine_lru_order_and_arena_release(self, vertex_dataset, netedr_cost):
        engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, trie_cache_size=2
        )
        cache = engine._trie_cache
        queries = [list(vertex_dataset.symbols(t))[:6] for t in (0, 1, 2)]
        engine.query(queries[0], tau_ratio=0.3)
        (first_key,) = cache.keys()
        entry = cache.peek(first_key)
        refs = [weakref.ref(entry)] + [
            weakref.ref(trie) for trie in entry.tries.values()
        ]
        assert refs[1:], "verification should have built at least one trie"
        del entry
        engine.query(queries[1], tau_ratio=0.3)
        engine.query(queries[0], tau_ratio=0.3)  # refresh: q1 is now LRU
        engine.query(queries[2], tau_ratio=0.3)  # capacity 2: evicts q1
        keys = cache.keys()
        assert len(keys) == 2
        assert first_key in keys  # the refreshed entry survived
        stats = engine.trie_cache_stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 3
        # Evicting q1's would mean releasing ITS arenas; here q1 survived,
        # so evict it too and confirm the arenas actually free.
        engine.query(queries[1], tau_ratio=0.3)
        engine.query(queries[2], tau_ratio=0.3)
        assert first_key not in cache.keys()
        gc.collect()
        assert all(ref() is None for ref in refs), "evicted arenas still pinned"

    def test_byte_budget_evicts_after_verification(self, vertex_dataset, netedr_cost):
        engine = SubtrajectorySearch(
            vertex_dataset,
            netedr_cost,
            trie_cache_size=8,
            trie_cache_bytes=1,  # nothing fits: every query evicts itself
        )
        query = list(vertex_dataset.symbols(0))[:6]
        engine.query(query, tau_ratio=0.3)
        stats = engine.trie_cache_stats()
        assert stats["size"] == 0
        assert stats["evictions"] == 1
        assert stats["bytes"] == 0
        # Correctness is unaffected — the query simply stays cold.
        engine.query(query, tau_ratio=0.3)
        assert engine.trie_cache_stats()["evictions"] == 2

    def test_size_zero_fully_disables(self, vertex_dataset, netedr_cost, rng):
        from tests.conftest import sample_query

        engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, trie_cache_size=0
        )
        query = sample_query(vertex_dataset, rng, 8)
        a = engine.query(query, tau_ratio=0.3)
        b = engine.query(query, tau_ratio=0.3)
        assert _result_key(a) == _result_key(b)
        # Truly off: no entries, no counting, and repeats recompute.
        assert engine.trie_cache_stats() == {
            "capacity": 0,
            "size": 0,
            "bytes": 0,
            "max_bytes": engine.trie_cache_stats()["max_bytes"],
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        assert b.verification.computed_columns == a.verification.computed_columns > 0

    def test_knob_cli_round_trip(self):
        args = build_parser().parse_args(["serve", "--self-test"])
        assert args.trie_cache_size == DEFAULT_TRIE_CACHE
        assert args.trie_cache_mb == DEFAULT_TRIE_CACHE_BYTES / (1024 * 1024)
        args = build_parser().parse_args(
            ["query", "--network", "n", "--trips", "t", "--query", "1",
             "--trie-cache-size", "0", "--trie-cache-mb", "16"]
        )
        assert args.trie_cache_size == 0
        assert args.trie_cache_mb == 16.0

    def test_healthz_and_stats_expose_trie_cache(
        self, vertex_dataset, netedr_cost, rng
    ):
        from tests.conftest import sample_query

        engine = SubtrajectorySearch(vertex_dataset, netedr_cost)
        service = QueryService(engine)
        with ServiceServer(service) as server:
            server.start()
            query = sample_query(vertex_dataset, rng, 8)
            # Distinct result-cache signatures, one shared trie entry.
            service.query(query, tau_ratio=0.3)
            service.query(query, tau_ratio=0.45)
            with urllib.request.urlopen(server.url + "/healthz", timeout=10) as resp:
                health = json.loads(resp.read().decode("utf-8"))
            assert health["trie_cache"]["misses"] == 1
            assert health["trie_cache"]["hits"] == 1
            assert health["trie_cache"]["bytes"] > 0
            stats = service.stats()
            assert stats["trie_cache"]["capacity"] == DEFAULT_TRIE_CACHE
            assert stats["trie_cache"]["evictions"] == 0

    def test_processes_backend_rejects_prebuilt_cache(
        self, vertex_dataset, netedr_cost
    ):
        """Worker processes cannot share a parent-side TrieCache (no
        shared memory; it holds a thread lock that cannot cross a spawn
        pickle) — the constructor must say so, not crash in the worker
        bootstrap."""
        from repro.core.trie import TrieCache
        from repro.exceptions import QueryError

        with pytest.raises(QueryError, match="trie_cache"):
            PartitionedSubtrajectorySearch(
                vertex_dataset,
                netedr_cost,
                num_shards=2,
                backend="processes",
                trie_cache=TrieCache(4),
            )

    def test_stats_sum_across_process_shards(self, vertex_dataset, netedr_cost):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset,
            netedr_cost,
            num_shards=2,
            backend="processes",
            trie_cache_size=4,
        )
        try:
            query = list(vertex_dataset.symbols(0))[:8]
            engine.query(query, tau_ratio=0.3)
            engine.query(query, tau_ratio=0.3)
            stats = engine.trie_cache_stats()
            assert stats["shards"] == 2
            assert stats["shards_reporting"] == 2  # idle workers all answer
            # Per-worker caches (no shared memory): capacities sum, and
            # the repeat hit every worker's own cache once.
            assert stats["capacity"] == 8
            assert stats["misses"] == 2
            assert stats["hits"] == 2
            assert stats["size"] == 2
        finally:
            engine.close()


class TestLookupStatusAndMeasuredBytes:
    """ISSUE 6 satellite 1 plus the lookup-status plumbing traces rely on."""

    def test_lookup_reports_hit_miss_off(self):
        cache = TrieCache(2)
        entry, status = cache.lookup("k")
        assert status == "miss" and entry is not None
        again, status2 = cache.lookup("k")
        assert status2 == "hit" and again is entry
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1
        off = TrieCache(0)
        assert off.lookup("k") == (None, "off")
        # Disabled caches count nothing — "off" is not a miss.
        assert off.stats()["hits"] == 0 and off.stats()["misses"] == 0

    def test_query_result_carries_trie_cache_status(
        self, vertex_dataset, netedr_cost
    ):
        engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, dp_backend="numpy", trie_cache_size=8
        )
        query = list(vertex_dataset.symbols(0))[:8]
        assert engine.query(query, tau_ratio=0.3).trie_cache_status == "miss"
        assert engine.query(query, tau_ratio=0.3).trie_cache_status == "hit"
        disabled = SubtrajectorySearch(
            vertex_dataset, netedr_cost, dp_backend="numpy", trie_cache_size=0
        )
        assert disabled.query(query, tau_ratio=0.3).trie_cache_status == "off"
        # The python backend never takes the trie path at all.
        python_engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, dp_backend="python"
        )
        assert python_engine.query(query, tau_ratio=0.3).trie_cache_status == ""

    def test_merged_shard_statuses_join_distinct_values(
        self, vertex_dataset, netedr_cost
    ):
        engine = PartitionedSubtrajectorySearch(
            vertex_dataset, netedr_cost, num_shards=2, dp_backend="numpy",
            trie_cache_size=8,
        )
        query = list(vertex_dataset.symbols(0))[:8]
        cold = engine.query(query, tau_ratio=0.3).trie_cache_status
        # Serial shards share one cache: shard 0's miss warms shard 1.
        assert "miss" in cold.split("+")
        warm = engine.query(query, tau_ratio=0.3).trie_cache_status
        assert warm == "hit"

    def test_bytes_are_measured_not_estimated(self, vertex_dataset, netedr_cost):
        """Satellite 1: ``nbytes`` measures the real containers and boxed
        objects (``sys.getsizeof`` + ``ndarray.nbytes``), so accounted
        bytes strictly exceed the raw array payload."""
        engine = SubtrajectorySearch(
            vertex_dataset, netedr_cost, dp_backend="numpy", trie_cache_size=8
        )
        query = list(vertex_dataset.symbols(0))[:8]
        engine.query(query, tau_ratio=0.3)
        cache = engine._trie_cache
        (key,) = cache.keys()
        entry = cache.peek(key)
        assert entry.tries, "verification should have built tries"
        array_bytes = sum(
            trie.matrix.nbytes + trie.mins.nbytes + trie.lasts.nbytes
            for trie in entry.tries.values()
        )
        assert array_bytes > 0
        assert entry.nbytes > array_bytes
        # What /metrics and /stats report is exactly the measured figure.
        assert engine.trie_cache_stats()["bytes"] == entry.nbytes
